#include "workloads/driver.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/scheduler.h"

namespace dynamast::workloads {

std::string Driver::Report::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "tput=%.1f txn/s committed=%llu errors=%llu remastered=%llu "
                "distributed=%llu",
                Throughput(), static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(remastered_txns),
                static_cast<unsigned long long>(distributed_txns));
  return std::string(buf);
}

Driver::Report Driver::Run(core::SystemInterface& system, Workload& workload) {
  Report report;
  std::mutex report_mu;

  // Fixed-count mode trades the wall-clock run shape (warmup + measure
  // windows, a controller thread) for a schedule-deterministic one: each
  // client issues exactly ops_per_client transactions, all measured.
  const bool fixed_ops = options_.ops_per_client > 0;
  const uint64_t ops_budget = options_.ops_per_client;
  Stopwatch run_watch;

  const auto start = std::chrono::steady_clock::now();
  const auto measure_start = start + options_.warmup;
  const auto end = measure_start + options_.measure;
  report.seconds = std::chrono::duration<double>(options_.measure).count();

  const size_t timeline_buckets =
      options_.timeline_resolution.count() > 0
          ? static_cast<size_t>(
                (options_.warmup + options_.measure + std::chrono::milliseconds(
                                                          999)) /
                options_.timeline_resolution) +
                1
          : 0;
  std::vector<std::atomic<uint64_t>> timeline(timeline_buckets);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(options_.num_clients);
  for (uint32_t i = 0; i < options_.num_clients; ++i) {
    clients.emplace_back([&, i] {
      sched::ThreadGuard sched_guard("client/" + std::to_string(i));
      core::ClientState client;
      client.id = i + 1;
      std::unique_ptr<WorkloadClient> generator = workload.MakeClient(i);
      // Thread-local tallies, merged under the report mutex at the end.
      uint64_t committed = 0, errors = 0, remastered = 0, distributed = 0,
               retries = 0;
      std::map<std::string, uint64_t> aborted_by_reason;
      std::map<std::string, uint64_t> committed_by_type;
      std::map<std::string, std::unique_ptr<LatencyRecorder>> latency_by_type;

      uint64_t executed = 0;
      while (fixed_ops ? executed < ops_budget
                       : !stop.load(std::memory_order_acquire)) {
        ++executed;
        WorkloadTxn txn = generator->Next();
        core::TxnResult result;
        Stopwatch watch;
        Status s = system.Execute(client, txn.profile, txn.logic, &result);
        const auto now = std::chrono::steady_clock::now();
        if (!fixed_ops && now >= end) break;
        if (s.ok() && timeline_buckets > 0) {
          const size_t bucket = static_cast<size_t>(
              (now - start) / options_.timeline_resolution);
          if (bucket < timeline_buckets) {
            timeline[bucket].fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (!fixed_ops && now < measure_start) continue;  // warmup
        if (s.ok()) {
          ++committed;
          committed_by_type[txn.type]++;
          auto& recorder = latency_by_type[txn.type];
          if (!recorder) recorder = std::make_unique<LatencyRecorder>();
          recorder->Record(watch.ElapsedMicros());
          if (result.remastered) ++remastered;
          if (result.distributed) ++distributed;
          retries += result.retries;
        } else {
          ++errors;
          // Abort accounting is split by reason (the stable code name),
          // never lumped into one opaque error count.
          aborted_by_reason[StatusCodeName(s.code())]++;
        }
      }

      std::lock_guard<std::mutex> guard(report_mu);
      report.committed += committed;
      report.errors += errors;
      report.remastered_txns += remastered;
      report.distributed_txns += distributed;
      report.retries += retries;
      for (const auto& [reason, count] : aborted_by_reason) {
        report.aborted_by_reason[reason] += count;
      }
      for (const auto& [type, count] : committed_by_type) {
        report.committed_by_type[type] += count;
      }
      for (auto& [type, recorder] : latency_by_type) {
        auto& slot = report.latency_by_type[type];
        if (!slot) {
          slot = std::move(recorder);
        } else {
          slot->Merge(*recorder);
        }
      }
    });
  }

  if (!fixed_ops) {
    // Scheduled mid-run actions (e.g. shuffling YCSB correlations for the
    // adaptivity experiment) run on a control thread.
    std::thread controller([&] {
      sched::ThreadGuard sched_guard("driver/ctl");
      auto actions = options_.scheduled_actions;
      std::sort(actions.begin(), actions.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [offset, action] : actions) {
        std::this_thread::sleep_until(start + offset);
        if (std::chrono::steady_clock::now() >= end) break;
        action();
      }
      std::this_thread::sleep_until(end);
      stop.store(true, std::memory_order_release);
    });
    sched::ScopedBlocked blocked;
    controller.join();
  }
  {
    sched::ScopedBlocked blocked;
    for (auto& t : clients) t.join();
  }
  if (fixed_ops) report.seconds = run_watch.ElapsedMicros() / 1e6;

  if (timeline_buckets > 0) {
    report.timeline.reserve(timeline_buckets);
    for (const auto& bucket : timeline) report.timeline.push_back(bucket.load(std::memory_order_relaxed));
  }

  // Driver-level metric export: bumped once per run from the merged
  // report, so series values equal the report exactly.
  if (options_.metrics != nullptr) {
    for (const auto& [type, count] : report.committed_by_type) {
      options_.metrics->GetCounter("driver_committed_total", {{"type", type}})
          ->Increment(count);
    }
    for (const auto& [reason, count] : report.aborted_by_reason) {
      options_.metrics
          ->GetCounter("driver_aborted_total", {{"reason", reason}})
          ->Increment(count);
    }
  }
  return report;
}

}  // namespace dynamast::workloads
