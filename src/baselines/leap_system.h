#ifndef DYNAMAST_BASELINES_LEAP_SYSTEM_H_
#define DYNAMAST_BASELINES_LEAP_SYSTEM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/debug_mutex.h"
#include "core/cluster.h"
#include "core/system_interface.h"
#include "selector/partition_map.h"

namespace dynamast::baselines {

/// LEAP baseline (Section VI-A1): a partitioned multi-master system
/// without replication that, like DynaMast, guarantees single-site
/// transaction execution — but achieves it by *data shipping*: before a
/// transaction runs, every partition in its read AND write sets is
/// physically copied to the execution site and ownership transferred.
///
/// The contrasts with DynaMast that the evaluation measures:
///  * localization moves data (bytes proportional to partition size), not
///    metadata;
///  * read-only transactions must be localized too (no replicas);
///  * there are no routing strategies — the destination is simply the site
///    owning the most accessed partitions — so hot partitions ping-pong.
class LeapSystem final : public core::SystemInterface {
 public:
  struct Options {
    core::Cluster::Options cluster;
    /// Initial partition -> owner placement (e.g. RangePlacement).
    std::vector<SiteId> placement;
    uint32_t max_retries = 16;
    std::string display_name = "leap";
  };

  LeapSystem(const Options& options, const Partitioner* partitioner);
  ~LeapSystem() override;

  std::string name() const override { return options_.display_name; }
  Status CreateTable(TableId id) override { return cluster_.CreateTable(id); }
  Status LoadRow(const RecordKey& key, std::string value) override;
  Status LoadReplicatedRow(const RecordKey& key, std::string value) override;
  void Seal() override;
  DYNAMAST_HOT_PATH Status Execute(core::ClientState& client,
                                   const core::TxnProfile& profile,
                                   const core::TxnLogic& logic,
                                   core::TxnResult* result) override;
  void Shutdown() override;
  history::Recorder* history() override { return cluster_.history(); }
  trace::Tracer* tracer() override { return cluster_.tracer(); }

  core::Cluster& cluster() { return cluster_; }

  uint64_t partitions_shipped() const { return partitions_shipped_.load(std::memory_order_relaxed); }
  uint64_t bytes_shipped() const { return bytes_shipped_.load(std::memory_order_relaxed); }
  SiteId OwnerOf(PartitionId p) const { return ownership_.MasterOfLocked(p); }

 private:
  /// Moves `partition` from `src` to `dest`: drains writers at the source,
  /// copies every row of the partition, and transfers ownership. Caller
  /// holds the partition's exclusive ownership lock.
  Status ShipPartition(PartitionId partition, SiteId src, SiteId dest);

  Options options_;
  const Partitioner* partitioner_;
  core::Cluster cluster_;
  /// Dynamic ownership map (same structure as the selector's partition
  /// map: owner + readers-writer lock per partition).
  selector::PartitionMap ownership_;
  /// Partitions of static replicated tables (never localized).
  DebugMutex static_partitions_mu_{"leap.static_partitions"};
  std::unordered_set<PartitionId> static_partitions_
      DYNAMAST_GUARDED_BY(static_partitions_mu_);
  std::atomic<uint64_t> partitions_shipped_{0};
  std::atomic<uint64_t> bytes_shipped_{0};
  bool sealed_ = false;
};

}  // namespace dynamast::baselines

#endif  // DYNAMAST_BASELINES_LEAP_SYSTEM_H_
