#ifndef DYNAMAST_BASELINES_STATIC_PLACEMENT_H_
#define DYNAMAST_BASELINES_STATIC_PLACEMENT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/key.h"

namespace dynamast::baselines {

/// Static partition->site placements for the baseline systems. The paper
/// runs the offline Schism partitioner and reports that it selects range
/// partitioning for YCSB and by-warehouse partitioning for TPC-C
/// (Sections VI-B1, VI-B2).
///
/// RangePlacement assigns *chunks* of contiguous partitions to sites in
/// round-robin order. Chunking reflects the balance/locality tradeoff an
/// offline partitioner makes: giving each site one giant contiguous
/// quarter would minimize boundary crossings but leaves the system at the
/// mercy of transient client-affinity hotspots, so balanced partitioners
/// interleave ranges at a finer grain. The default chunk keeps ~8 chunks
/// per site. With few partitions (TPC-C warehouses) the chunk is 1, i.e.
/// classic by-warehouse placement.
inline std::vector<SiteId> RangePlacement(size_t num_partitions,
                                          uint32_t num_sites,
                                          size_t chunk = 0) {
  if (chunk == 0) {
    chunk = std::max<size_t>(1, num_partitions / (num_sites * 8));
  }
  std::vector<SiteId> placement(num_partitions, 0);
  for (size_t p = 0; p < num_partitions; ++p) {
    placement[p] = static_cast<SiteId>((p / chunk) % num_sites);
  }
  return placement;
}

/// Hash placement (round-robin over partition ids), for comparison runs.
inline std::vector<SiteId> HashPlacement(size_t num_partitions,
                                         uint32_t num_sites) {
  std::vector<SiteId> placement(num_partitions, 0);
  for (size_t p = 0; p < num_partitions; ++p) {
    placement[p] = static_cast<SiteId>(p % num_sites);
  }
  return placement;
}

}  // namespace dynamast::baselines

#endif  // DYNAMAST_BASELINES_STATIC_PLACEMENT_H_
