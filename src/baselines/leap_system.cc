#include "baselines/leap_system.h"

#include <algorithm>
#include <unordered_map>

#include "core/site_txn_context.h"

namespace dynamast::baselines {

namespace {
constexpr size_t kRpcRequestBytes = 256;
constexpr size_t kRpcResponseBytes = 128;
constexpr size_t kShipRequestBytes = 64;

VersionVector MaskToIndex(const VersionVector& v, SiteId s) {
  VersionVector out(v.size());
  if (s < v.size()) out[s] = v[s];
  return out;
}

// LEAP keeps no replicas, so its cluster must never run refresh appliers.
// The flag has to be cleared *before* Cluster is constructed: an applier
// re-applying an old remote update after a partition ships in would
// shadow the freshly copied rows (versions append newest-at-back).
core::Cluster::Options UnreplicatedCluster(core::Cluster::Options o) {
  o.replicated = false;
  return o;
}
}  // namespace

LeapSystem::LeapSystem(const Options& options, const Partitioner* partitioner)
    : options_(options),
      partitioner_(partitioner),
      cluster_(UnreplicatedCluster(options.cluster), partitioner),
      ownership_(partitioner->NumPartitions(), 0) {
  options_.cluster.replicated = false;
  if (options_.placement.size() < partitioner->NumPartitions()) {
    options_.placement.resize(partitioner->NumPartitions(), 0);
  }
  for (PartitionId p = 0; p < partitioner->NumPartitions(); ++p) {
    ownership_.SetMaster(p, options_.placement[p]);
  }
}

LeapSystem::~LeapSystem() { Shutdown(); }

Status LeapSystem::LoadRow(const RecordKey& key, std::string value) {
  const PartitionId p = partitioner_->PartitionOf(key);
  return cluster_.site(options_.placement[p])->LoadRecord(key, std::move(value));
}

Status LeapSystem::LoadReplicatedRow(const RecordKey& key, std::string value) {
  // Static read-only tables live at every site and are never localized.
  const PartitionId p = partitioner_->PartitionOf(key);
  {
    MutexLock guard(static_partitions_mu_);
    static_partitions_.insert(p);
  }
  for (SiteId s = 0; s < cluster_.num_sites(); ++s) {
    Status status = cluster_.site(s)->LoadRecord(key, value);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

void LeapSystem::Seal() {
  if (sealed_) return;
  sealed_ = true;
  for (PartitionId p = 0; p < options_.placement.size(); ++p) {
    const SiteId owner = options_.placement[p];
    for (SiteId s = 0; s < cluster_.num_sites(); ++s) {
      cluster_.site(s)->SetMasterOf(p, s == owner);
    }
  }
  // Unreplicated: Cluster::Start is a no-op, but call it for symmetry.
  cluster_.Start();
}

Status LeapSystem::ShipPartition(PartitionId partition, SiteId src,
                                 SiteId dest) {
  site::SiteManager* src_site = cluster_.site(src);
  site::SiteManager* dest_site = cluster_.site(dest);

  // Quiesce the source: stop admitting writers and drain in-flight ones
  // (reuses the release path; the marker it logs is harmless without
  // appliers and keeps the redo log authoritative for ownership).
  VersionVector release_version;
  Status s = src_site->Release({partition}, dest, &release_version);
  if (!s.ok()) return s;

  // Copy the partition's rows — enumerated from the source's live tables,
  // so rows inserted after the initial load ship too. This is the data
  // movement DynaMast's metadata-only remastering avoids.
  std::vector<RecordKey> keys;
  for (TableId table : src_site->engine().TableIds()) {
    storage::Table* t = src_site->engine().GetTable(table);
    t->ForEachRowId([&](uint64_t row) {
      const RecordKey key{table, row};
      if (partitioner_->PartitionOf(key) == partition) keys.push_back(key);
    });
  }
  size_t bytes = 0;
  for (const RecordKey& key : keys) {
    std::string value;
    Status rs = src_site->engine().ReadLatest(key, &value);
    if (rs.IsNotFound()) continue;
    if (!rs.ok()) return rs;
    bytes += value.size() + 16;
    // Install as an always-visible base version at the destination (LEAP
    // has no cross-site snapshots; single-copy consistency comes from
    // exclusive ownership plus write locks).
    Status install = dest_site->LoadRecord(key, std::move(value));
    if (!install.ok()) return install;
  }
  cluster_.network().Send(net::TrafficClass::kDataShipping,
                          kShipRequestBytes);
  cluster_.network().Send(net::TrafficClass::kDataShipping, bytes);

  dest_site->SetMasterOf(partition, true);
  partitions_shipped_.fetch_add(1, std::memory_order_relaxed);
  bytes_shipped_.fetch_add(bytes, std::memory_order_relaxed);
  return Status::OK();
}

Status LeapSystem::Execute(core::ClientState& client,
                           const core::TxnProfile& profile,
                           const core::TxnLogic& logic,
                           core::TxnResult* result) {
  // `result` is an optional out-param; the code below assumes non-null.
  core::TxnResult scratch;
  if (result == nullptr) result = &scratch;
  client.issued_txns++;
  net::SimulatedNetwork& net = cluster_.network();
  // Same client->router hop as every system in the framework (see
  // PartitionedSystem::Execute).
  net.RoundTrip(net::TrafficClass::kClientRequest, 128, 64);

  // LEAP localizes the union of the read and write sets.
  std::vector<PartitionId> partitions;
  for (const RecordKey& key : profile.write_keys) {
    partitions.push_back(partitioner_->PartitionOf(key));
  }
  for (PartitionId p : profile.extra_write_partitions) partitions.push_back(p);
  for (const RecordKey& key : profile.read_keys) {
    partitions.push_back(partitioner_->PartitionOf(key));
  }
  for (PartitionId p : profile.read_partitions) partitions.push_back(p);
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());
  {
    // Static replicated partitions need no localization.
    MutexLock guard(static_partitions_mu_);
    std::erase_if(partitions, [&](PartitionId p) {
      return static_partitions_.count(p) > 0;
    });
  }
  if (partitions.empty()) {
    return Status::InvalidArgument("transaction accesses nothing");
  }

  Status last_error = Status::Internal("no attempt");
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    // Ownership lookup + localization, under exclusive ownership locks in
    // sorted order (no concurrent shipping of the same partition).
    for (PartitionId p : partitions) ownership_.LockExclusive(p);
    std::vector<SiteId> owners(partitions.size());
    std::unordered_map<SiteId, size_t> counts;
    for (size_t i = 0; i < partitions.size(); ++i) {
      owners[i] = ownership_.MasterOf(partitions[i]);
      counts[owners[i]]++;
    }
    // No routing strategy: execute where most accessed partitions already
    // live; ship the rest there.
    SiteId dest = owners[0];
    size_t best = 0;
    for (const auto& [site, count] : counts) {
      if (count > best) {
        best = count;
        dest = site;
      }
    }
    bool shipped = false;
    Status ship_status;
    for (size_t i = 0; i < partitions.size(); ++i) {
      if (owners[i] == dest) continue;
      net.RoundTrip(net::TrafficClass::kDataShipping, kShipRequestBytes,
                    kShipRequestBytes);
      ship_status = ShipPartition(partitions[i], owners[i], dest);
      if (!ship_status.ok()) break;
      ownership_.SetMaster(partitions[i], dest);
      shipped = true;
    }
    for (auto it = partitions.rbegin(); it != partitions.rend(); ++it) {
      ownership_.UnlockExclusive(*it);
    }
    if (!ship_status.ok()) {
      last_error = ship_status;
      continue;
    }
    result->remastered = result->remastered || shipped;

    // Execute locally at the destination.
    net.RoundTrip(net::TrafficClass::kClientRequest,
                  kRpcRequestBytes + 32 * profile.write_keys.size(),
                  kRpcResponseBytes);
    site::SiteManager* site = cluster_.site(dest);
    site::AdmissionGate::Scoped slot(site->gate());
    site::TxnOptions txn_options;
    txn_options.read_only = profile.read_only;
    txn_options.write_keys = profile.write_keys;
    txn_options.min_begin_version = MaskToIndex(client.session, dest);
    txn_options.client = client.id;
    txn_options.client_txn = client.issued_txns;
    site::Transaction txn;
    Status s = site->BeginTransaction(txn_options, &txn);
    if (s.IsNotMaster()) {
      // Partition shipped away between localization and begin; retry.
      last_error = s;
      result->retries++;
      continue;
    }
    if (!s.ok()) return s;
    core::SiteTxnContext context(site, &txn);
    s = logic(context);
    if (!s.ok()) {
      site->Abort(&txn, s);
      return s;
    }
    VersionVector commit_version;
    s = site->Commit(&txn, &commit_version);
    if (!s.ok()) return s;
    client.session.MaxWith(commit_version);
    result->executed_at = dest;
    return Status::OK();
  }
  return last_error;
}

void LeapSystem::Shutdown() { cluster_.Stop(); }

}  // namespace dynamast::baselines
