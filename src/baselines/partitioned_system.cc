#include "baselines/partitioned_system.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/scheduler.h"
#include "core/site_txn_context.h"

namespace dynamast::baselines {

namespace {

constexpr size_t kRpcRequestBytes = 256;
constexpr size_t kRpcResponseBytes = 128;
constexpr size_t kPrepareBytes = 96;
constexpr size_t kCommitDecisionBytes = 64;

/// Restricts a session vector to one site's own index — cross-site session
/// freshness is meaningless without replication (no refresh transactions
/// ever advance the other indexes), so unreplicated systems enforce
/// per-site sessions only.
VersionVector MaskToIndex(const VersionVector& v, SiteId s) {
  VersionVector out(v.size());
  if (s < v.size()) out[s] = v[s];
  return out;
}

}  // namespace

/// TxnContext for a (possibly distributed) write transaction coordinated
/// with two-phase commit. Each participant site holds an open sub-
/// transaction; operations route to the sub-transaction of the key's
/// owning site.
class CoordinatedTxnContext final : public core::TxnContext {
 public:
  CoordinatedTxnContext(PartitionedSystem* system, SiteId coordinator,
                        std::map<SiteId, site::Transaction>* subtxns)
      : system_(system), coordinator_(coordinator), subtxns_(subtxns) {}

  ~CoordinatedTxnContext() override { FlushCharges(); }

  Status Get(const RecordKey& key, std::string* value) override {
    ChargeRead();
    const SiteId owner = system_->OwnerOfKey(key);
    auto it = subtxns_->find(owner);
    if (it != subtxns_->end()) {
      // The owner is a write participant: read through its sub-transaction
      // (sees this transaction's staged writes).
      return it->second.Get(key, value);
    }
    if (system_->options_.replicated) {
      // Multi-master: a local replica serves the read.
      return subtxns_->at(coordinator_).Get(key, value);
    }
    // Partition-store: static read-only tables are replicated everywhere,
    // so a locally present row is served without a round trip. The
    // coordinator need not be a participant (random-coordinator mode), in
    // which case the engine is read directly at the current snapshot.
    site::SiteManager* coord_site = system_->cluster_.site(coordinator_);
    if (coord_site->engine().Contains(key)) {
      auto coord_txn = subtxns_->find(coordinator_);
      if (coord_txn != subtxns_->end()) {
        return coord_txn->second.Get(key, value);
      }
      return coord_site->engine().Read(key, coord_site->CurrentVersion(),
                                       value);
    }
    // Otherwise: remote read round trip at the owner's snapshot.
    system_->cluster_.network().RoundTrip(net::TrafficClass::kCoordination,
                                          kRpcRequestBytes, kRpcResponseBytes);
    // Participant-side work charges the owner's service time but does not
    // occupy an admission slot: coordinators already hold slots at their
    // own sites, and slot-in-slot waiting deadlocks under load.
    site::SiteManager* owner_site = system_->cluster_.site(owner);
    owner_site->ChargeOps(1, 0);
    return owner_site->engine().Read(key, owner_site->CurrentVersion(), value);
  }

  Status Put(const RecordKey& key, std::string value) override {
    system_->cluster_.site(coordinator_)->ChargeOps(0, 1);
    const SiteId owner = system_->OwnerOfKey(key);
    auto it = subtxns_->find(owner);
    if (it == subtxns_->end()) {
      return Status::InvalidArgument("write to non-participant site");
    }
    return it->second.Put(key, std::move(value));
  }

  Status Insert(const RecordKey& key, std::string value) override {
    system_->cluster_.site(coordinator_)->ChargeOps(0, 1);
    return InsertImpl(key, std::move(value));
  }

  /// Sleeps off accumulated read service-time debt.
  void FlushCharges() {
    if (pending_.count() > 0) {
      system_->cluster_.site(coordinator_)->ChargeDuration(pending_);
      pending_ = {};
    }
  }

 private:
  void ChargeRead() {
    pending_ += system_->cluster_.site(coordinator_)->options().read_op_cost;
    if (pending_ >= std::chrono::microseconds(500)) FlushCharges();
  }

  Status InsertImpl(const RecordKey& key, std::string value) {
    const SiteId owner = system_->OwnerOfKey(key);
    auto it = subtxns_->find(owner);
    if (it == subtxns_->end()) {
      return Status::InvalidArgument("insert to non-participant site");
    }
    return it->second.Insert(key, std::move(value));
  }

  PartitionedSystem* system_;
  SiteId coordinator_;
  std::map<SiteId, site::Transaction>* subtxns_;
  std::chrono::nanoseconds pending_{0};
};

PartitionedSystem::PartitionedSystem(const Options& options,
                                     const Partitioner* partitioner)
    : options_(options),
      partitioner_(partitioner),
      cluster_(options.cluster, partitioner),
      rng_(options.seed) {
  if (options_.placement.size() < partitioner->NumPartitions()) {
    options_.placement.resize(partitioner->NumPartitions(), 0);
  }
}

PartitionedSystem::~PartitionedSystem() { Shutdown(); }

Status PartitionedSystem::LoadRow(const RecordKey& key, std::string value) {
  if (options_.replicated) {
    for (SiteId s = 0; s < cluster_.num_sites(); ++s) {
      Status status = cluster_.site(s)->LoadRecord(key, value);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }
  // Partition-store: the owning site holds the only copy.
  return cluster_.site(OwnerOfKey(key))->LoadRecord(key, value);
}

Status PartitionedSystem::LoadReplicatedRow(const RecordKey& key,
                                            std::string value) {
  // Static read-only tables are replicated even without general
  // replication (Section VI-A1).
  for (SiteId s = 0; s < cluster_.num_sites(); ++s) {
    Status status = cluster_.site(s)->LoadRecord(key, value);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

void PartitionedSystem::Seal() {
  if (sealed_) return;
  sealed_ = true;
  for (PartitionId p = 0; p < options_.placement.size(); ++p) {
    const SiteId owner = options_.placement[p];
    for (SiteId s = 0; s < cluster_.num_sites(); ++s) {
      cluster_.site(s)->SetMasterOf(p, s == owner);
    }
  }
  cluster_.Start();
}

Status PartitionedSystem::Execute(core::ClientState& client,
                                  const core::TxnProfile& profile,
                                  const core::TxnLogic& logic,
                                  core::TxnResult* result) {
  // `result` is an optional out-param; the helpers below assume non-null.
  core::TxnResult scratch;
  if (result == nullptr) result = &scratch;
  client.issued_txns++;
  // All evaluated systems share the framework's client->router hop
  // (Section VI-A1: every design is implemented within the DynaMast
  // framework), so baselines pay the same routing round trip DynaMast
  // pays for its site selector.
  cluster_.network().RoundTrip(net::TrafficClass::kClientRequest, 128, 64);
  if (profile.read_only) return ExecuteRead(client, profile, logic, result);

  // Which sites own the write set?
  std::unordered_map<SiteId, size_t> owner_counts;
  for (const RecordKey& key : profile.write_keys) {
    owner_counts[OwnerOfKey(key)]++;
  }
  for (PartitionId p : profile.extra_write_partitions) {
    owner_counts[OwnerOf(p)]++;
  }
  if (owner_counts.empty()) {
    return Status::InvalidArgument("write transaction with no write set");
  }
  SiteId coordinator = owner_counts.begin()->first;
  size_t best = 0;
  std::vector<SiteId> participants;
  for (const auto& [site, count] : owner_counts) {
    participants.push_back(site);
    if (count > best) {
      best = count;
      coordinator = site;
    }
  }
  std::sort(participants.begin(), participants.end());

  if (options_.random_coordinator) {
    // Placement-oblivious front: the client lands on an arbitrary site.
    MutexLock guard(rng_mu_);
    coordinator = static_cast<SiteId>(rng_.Uniform(cluster_.num_sites()));
  }

  // The pure-local fast path requires replicas: without them, reads of
  // rows the executing site does not own need the coordinated context's
  // remote-read machinery even when the write set is single-sited.
  if (participants.size() == 1 && participants[0] == coordinator &&
      options_.replicated) {
    single_site_txns_.fetch_add(1, std::memory_order_relaxed);
    return ExecuteLocalWrite(client, profile, logic, coordinator, result);
  }
  if (participants.size() == 1 && participants[0] == coordinator) {
    single_site_txns_.fetch_add(1, std::memory_order_relaxed);
  } else {
    distributed_txns_.fetch_add(1, std::memory_order_relaxed);
  }
  result->distributed = participants.size() > 1;
  return ExecuteDistributedWrite(client, profile, logic, coordinator,
                                 participants, result);
}

Status PartitionedSystem::ExecuteLocalWrite(core::ClientState& client,
                                            const core::TxnProfile& profile,
                                            const core::TxnLogic& logic,
                                            SiteId site_id,
                                            core::TxnResult* result) {
  net::SimulatedNetwork& net = cluster_.network();
  net.RoundTrip(net::TrafficClass::kClientRequest,
                kRpcRequestBytes + 32 * profile.write_keys.size(),
                kRpcResponseBytes);
  site::SiteManager* site = cluster_.site(site_id);
  site::AdmissionGate::Scoped slot(site->gate());

  site::TxnOptions options;
  options.write_keys = profile.write_keys;
  options.min_begin_version = options_.replicated
                                  ? client.session
                                  : MaskToIndex(client.session, site_id);
  options.client = client.id;
  options.client_txn = client.issued_txns;
  site::Transaction txn;
  Status s = site->BeginTransaction(options, &txn);
  if (!s.ok()) return s;

  core::SiteTxnContext context(site, &txn);
  s = logic(context);
  if (!s.ok()) {
    site->Abort(&txn, s);
    return s;
  }
  VersionVector commit_version;
  s = site->Commit(&txn, &commit_version);
  if (!s.ok()) return s;
  client.session.MaxWith(commit_version);
  result->executed_at = site_id;
  return Status::OK();
}

Status PartitionedSystem::ExecuteDistributedWrite(
    core::ClientState& client, const core::TxnProfile& profile,
    const core::TxnLogic& logic, SiteId coordinator,
    const std::vector<SiteId>& participants, core::TxnResult* result) {
  net::SimulatedNetwork& net = cluster_.network();
  net.RoundTrip(net::TrafficClass::kClientRequest,
                kRpcRequestBytes + 32 * profile.write_keys.size(),
                kRpcResponseBytes);
  // Coordinator occupies a slot for the whole transaction.
  site::AdmissionGate::Scoped coord_slot(cluster_.site(coordinator)->gate());

  // Group declared write keys by owning site.
  std::unordered_map<SiteId, std::vector<RecordKey>> writes_by_site;
  for (const RecordKey& key : profile.write_keys) {
    writes_by_site[OwnerOfKey(key)].push_back(key);
  }

  // Open one sub-transaction per participant, acquiring its write locks.
  // Locks stay held through prepare and commit — the blocking that makes
  // distributed transactions expensive (Section II-A).
  std::map<SiteId, site::Transaction> subtxns;
  auto abort_all = [&] {
    for (auto& [site_id, txn] : subtxns) cluster_.site(site_id)->Abort(&txn);
  };
  for (SiteId p : participants) {
    if (p != coordinator) {
      net.RoundTrip(net::TrafficClass::kCoordination, kRpcRequestBytes,
                    kRpcResponseBytes);
    }
    site::SiteManager* site = cluster_.site(p);
    site::TxnOptions options;
    options.write_keys = writes_by_site[p];
    options.min_begin_version = options_.replicated
                                    ? client.session
                                    : MaskToIndex(client.session, p);
    options.client = client.id;
    options.client_txn = client.issued_txns;
    site::Transaction txn;
    // Participant work does not take a slot (see CoordinatedTxnContext::Get
    // on the slot-in-slot deadlock); lock acquisition inside Begin is
    // bounded by the lock timeout.
    Status s = site->BeginTransaction(options, &txn);
    if (!s.ok()) {
      abort_all();
      return s;
    }
    subtxns.emplace(p, std::move(txn));
  }

  CoordinatedTxnContext context(this, coordinator, &subtxns);
  Status s = logic(context);
  if (!s.ok()) {
    abort_all();
    return s;
  }

  // Phase 1: prepare — every participant votes. A single-participant
  // transaction commits in one phase (no global decision to reach).
  if (participants.size() > 1) {
    for (SiteId p : participants) {
      if (p != coordinator) {
        net.RoundTrip(net::TrafficClass::kCoordination, kPrepareBytes,
                      kCommitDecisionBytes);
      }
      bool vote_no = false;
      if (options_.injected_abort_probability > 0) {
        MutexLock guard(rng_mu_);
        vote_no = rng_.Bernoulli(options_.injected_abort_probability);
      }
      if (vote_no) {
        abort_all();
        return Status::Aborted("participant voted no in prepare");
      }
    }
  }

  // Phase 2: commit at every participant.
  for (auto& [site_id, txn] : subtxns) {
    if (site_id != coordinator) {
      net.RoundTrip(net::TrafficClass::kCoordination, kCommitDecisionBytes,
                    kCommitDecisionBytes);
    }
    site::SiteManager* site = cluster_.site(site_id);
    VersionVector commit_version;
    Status cs = site->Commit(&txn, &commit_version);
    if (!cs.ok()) return cs;  // after the decision, commit must apply
    client.session.MaxWith(commit_version);
  }
  result->executed_at = coordinator;
  return Status::OK();
}

Status PartitionedSystem::ExecuteRead(core::ClientState& client,
                                      const core::TxnProfile& profile,
                                      const core::TxnLogic& logic,
                                      core::TxnResult* result) {
  net::SimulatedNetwork& net = cluster_.network();

  if (options_.replicated) {
    // Multi-master: any session-fresh replica serves the whole
    // transaction.
    std::vector<SiteId> fresh;
    SiteId freshest = 0;
    uint64_t freshest_total = 0;
    for (SiteId s = 0; s < cluster_.num_sites(); ++s) {
      const VersionVector svv = cluster_.site(s)->CurrentVersion();
      if (svv.DominatesOrEquals(client.session)) fresh.push_back(s);
      if (svv.Total() >= freshest_total) {
        freshest_total = svv.Total();
        freshest = s;
      }
    }
    SiteId site_id = freshest;
    if (!fresh.empty()) {
      MutexLock guard(rng_mu_);
      site_id = fresh[rng_.Uniform(fresh.size())];
    }
    net.RoundTrip(net::TrafficClass::kClientRequest, kRpcRequestBytes,
                  kRpcResponseBytes);
    site::SiteManager* site = cluster_.site(site_id);
    site::AdmissionGate::Scoped slot(site->gate());
    site::TxnOptions options;
    options.read_only = true;
    options.min_begin_version = client.session;
    options.client = client.id;
    options.client_txn = client.issued_txns;
    site::Transaction txn;
    Status s = site->BeginTransaction(options, &txn);
    if (!s.ok()) return s;
    core::SiteTxnContext context(site, &txn);
    s = logic(context);
    if (!s.ok()) {
      site->Abort(&txn, s);
      return s;
    }
    VersionVector commit_version;
    s = site->Commit(&txn, &commit_version);
    if (!s.ok()) return s;
    client.session.MaxWith(commit_version);
    result->executed_at = site_id;
    return Status::OK();
  }

  // Partition-store: the transaction runs at the site owning most of the
  // read set; reads of other partitions are remote round trips, and the
  // slowest one gates completion (the straggler effect, Section VI-B2).
  std::unordered_map<SiteId, size_t> owner_counts;
  for (const RecordKey& key : profile.read_keys) {
    owner_counts[OwnerOfKey(key)]++;
  }
  for (PartitionId p : profile.read_partitions) {
    owner_counts[OwnerOf(p)]++;
  }
  SiteId coordinator = 0;
  size_t best = 0;
  for (const auto& [site, count] : owner_counts) {
    if (count > best) {
      best = count;
      coordinator = site;
    }
  }
  if (options_.random_coordinator) {
    MutexLock guard(rng_mu_);
    coordinator = static_cast<SiteId>(rng_.Uniform(cluster_.num_sites()));
  }
  if (owner_counts.size() > 1) {
    distributed_txns_.fetch_add(1, std::memory_order_relaxed);
    result->distributed = true;
  } else {
    single_site_txns_.fetch_add(1, std::memory_order_relaxed);
  }

  net.RoundTrip(net::TrafficClass::kClientRequest, kRpcRequestBytes,
                kRpcResponseBytes);
  site::SiteManager* coord_site = cluster_.site(coordinator);
  site::AdmissionGate::Scoped slot(coord_site->gate());

  // Remote portions of the declared read set are fetched with one batched
  // sub-read RPC per owning site, issued in parallel — the transaction
  // completes when the slowest site responds (the straggler effect of
  // Section VI-B2). Each sub-read occupies the owner's capacity: without
  // replicas, read load is pinned to the data's owner.
  std::unordered_map<SiteId, std::vector<RecordKey>> remote_reads;
  for (const RecordKey& key : profile.read_keys) {
    const SiteId owner = OwnerOfKey(key);
    if (owner != coordinator && !coord_site->engine().Contains(key)) {
      remote_reads[owner].push_back(key);
    }
  }
  std::unordered_map<RecordKey, std::string, RecordKeyHash> prefetched;
  std::mutex prefetched_mu;
  if (!remote_reads.empty()) {
    std::vector<std::thread> fetchers;
    const std::string parent = sched::CurrentThreadName();
    for (auto& [owner, keys] : remote_reads) {
      fetchers.emplace_back([this, owner = owner, &keys, &prefetched,
                             &prefetched_mu, &parent] {
        sched::ThreadGuard sched_guard(parent + "/fetch/" +
                                       std::to_string(owner));
        cluster_.network().RoundTrip(net::TrafficClass::kCoordination,
                                     kRpcRequestBytes + 8 * keys.size(),
                                     kRpcResponseBytes + 64 * keys.size());
        site::SiteManager* site = cluster_.site(owner);
        // Charge the owner's read service time without occupying a slot
        // (slot-in-slot waiting deadlocks; the coordinator holds one).
        site->ChargeOps(keys.size(), 0);
        const VersionVector snapshot = site->CurrentVersion();
        for (const RecordKey& key : keys) {
          std::string value;
          if (site->engine().Read(key, snapshot, &value).ok()) {
            std::lock_guard<std::mutex> guard(prefetched_mu);
            prefetched.emplace(key, std::move(value));
          }
        }
      });
    }
    sched::ScopedBlocked blocked;
    for (auto& f : fetchers) f.join();
  }

  // Undeclared remote reads (data-dependent, e.g. TPC-C Stock-Level order
  // lines) fall back to one round trip per key; per-site snapshots are
  // pinned at first touch.
  class ReadContext final : public core::TxnContext {
   public:
    ReadContext(PartitionedSystem* system, SiteId coordinator,
                std::unordered_map<RecordKey, std::string, RecordKeyHash>*
                    prefetched)
        : system_(system), coordinator_(coordinator),
          prefetched_(prefetched) {}

    Status Get(const RecordKey& key, std::string* value) override {
      auto cached = prefetched_->find(key);
      if (cached != prefetched_->end()) {
        *value = cached->second;  // already charged at the owning site
        return Status::OK();
      }
      site::SiteManager* coord_site = system_->cluster_.site(coordinator_);
      pending_ += coord_site->options().read_op_cost;
      if (pending_ >= std::chrono::microseconds(500)) {
        coord_site->ChargeDuration(pending_);
        pending_ = {};
      }
      SiteId owner = system_->OwnerOfKey(key);
      // Replicated static tables (e.g. TPC-C ITEM) are present locally.
      if (owner != coordinator_ && coord_site->engine().Contains(key)) {
        owner = coordinator_;
      }
      if (owner != coordinator_) {
        system_->cluster_.network().RoundTrip(
            net::TrafficClass::kCoordination, kRpcRequestBytes,
            kRpcResponseBytes);
      }
      site::SiteManager* site = system_->cluster_.site(owner);
      auto it = snapshots_.find(owner);
      if (it == snapshots_.end()) {
        it = snapshots_.emplace(owner, site->CurrentVersion()).first;
      }
      return site->engine().Read(key, it->second, value);
    }
    Status Put(const RecordKey&, std::string) override {
      return Status::InvalidArgument("write in read-only transaction");
    }
    Status Insert(const RecordKey&, std::string) override {
      return Status::InvalidArgument("insert in read-only transaction");
    }

   private:
    PartitionedSystem* system_;
    SiteId coordinator_;
    std::unordered_map<RecordKey, std::string, RecordKeyHash>* prefetched_;
    std::unordered_map<SiteId, VersionVector> snapshots_;
    std::chrono::nanoseconds pending_{0};
  };

  ReadContext context(this, coordinator, &prefetched);
  Status s = logic(context);
  if (!s.ok()) return s;
  result->executed_at = coordinator;
  return Status::OK();
}

void PartitionedSystem::Shutdown() { cluster_.Stop(); }

}  // namespace dynamast::baselines
