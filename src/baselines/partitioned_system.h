#ifndef DYNAMAST_BASELINES_PARTITIONED_SYSTEM_H_
#define DYNAMAST_BASELINES_PARTITIONED_SYSTEM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/debug_mutex.h"
#include "common/random.h"
#include "core/cluster.h"
#include "core/system_interface.h"

namespace dynamast::baselines {

/// The two statically partitioned baselines of Section VI-A1, sharing one
/// implementation:
///
///  * **multi-master** (`replicated = true`): every data item has one
///    static master copy; updates run on masters, with two-phase commit
///    for multi-site write sets; lazily maintained replicas let read-only
///    transactions run at any (session-fresh) site.
///  * **partition-store** (`replicated = false`): same static masters and
///    2PC, but no replicas at all — reads of remote partitions are remote
///    round trips, and multi-partition read-only transactions fan out
///    across sites (the straggler effect of Section VI-B2).
///
/// Both use the same site manager, storage engine, MVCC and isolation
/// level as DynaMast (the paper's apples-to-apples setup).
class PartitionedSystem final : public core::SystemInterface {
 public:
  struct Options {
    core::Cluster::Options cluster;
    /// partition -> owning site (e.g. baselines::RangePlacement).
    std::vector<SiteId> placement;
    bool replicated = true;
    /// If true, each transaction's coordinating site is chosen at random
    /// (a placement-oblivious client front): every operation on data the
    /// coordinator does not own pays remote round trips — the
    /// "additional round-trips during transaction processing" the paper
    /// attributes to partition-store (Section VI-B1). Multi-master routes
    /// writes to the majority master (its router must know masters).
    bool random_coordinator = false;
    /// Probability that a prepare vote is "no" (failure injection for
    /// atomicity tests). Zero in benchmarks.
    double injected_abort_probability = 0.0;
    std::string display_name = "multi-master";
    uint64_t seed = 7;
  };

  static Options MultiMaster(core::Cluster::Options cluster,
                             std::vector<SiteId> placement) {
    Options o;
    o.cluster = std::move(cluster);
    o.cluster.replicated = true;
    o.placement = std::move(placement);
    o.replicated = true;
    o.display_name = "multi-master";
    return o;
  }

  static Options PartitionStore(core::Cluster::Options cluster,
                                std::vector<SiteId> placement) {
    Options o;
    o.cluster = std::move(cluster);
    o.cluster.replicated = false;
    o.placement = std::move(placement);
    o.replicated = false;
    o.random_coordinator = true;
    o.display_name = "partition-store";
    return o;
  }

  PartitionedSystem(const Options& options, const Partitioner* partitioner);
  ~PartitionedSystem() override;

  std::string name() const override { return options_.display_name; }
  Status CreateTable(TableId id) override { return cluster_.CreateTable(id); }
  Status LoadRow(const RecordKey& key, std::string value) override;
  Status LoadReplicatedRow(const RecordKey& key, std::string value) override;
  void Seal() override;
  DYNAMAST_HOT_PATH Status Execute(core::ClientState& client,
                                   const core::TxnProfile& profile,
                                   const core::TxnLogic& logic,
                                   core::TxnResult* result) override;
  void Shutdown() override;
  history::Recorder* history() override { return cluster_.history(); }
  trace::Tracer* tracer() override { return cluster_.tracer(); }

  core::Cluster& cluster() { return cluster_; }

  uint64_t distributed_txns() const { return distributed_txns_.load(std::memory_order_relaxed); }
  uint64_t single_site_txns() const { return single_site_txns_.load(std::memory_order_relaxed); }

 private:
  friend class CoordinatedTxnContext;

  SiteId OwnerOf(PartitionId p) const { return options_.placement[p]; }
  SiteId OwnerOfKey(const RecordKey& key) const {
    return OwnerOf(partitioner_->PartitionOf(key));
  }

  Status ExecuteLocalWrite(core::ClientState& client,
                           const core::TxnProfile& profile,
                           const core::TxnLogic& logic, SiteId site,
                           core::TxnResult* result);
  Status ExecuteDistributedWrite(core::ClientState& client,
                                 const core::TxnProfile& profile,
                                 const core::TxnLogic& logic,
                                 SiteId coordinator,
                                 const std::vector<SiteId>& participants,
                                 core::TxnResult* result);
  Status ExecuteRead(core::ClientState& client,
                     const core::TxnProfile& profile,
                     const core::TxnLogic& logic, core::TxnResult* result);

  Options options_;
  const Partitioner* partitioner_;
  core::Cluster cluster_;
  std::atomic<uint64_t> distributed_txns_{0};
  std::atomic<uint64_t> single_site_txns_{0};
  DebugMutex rng_mu_{"partitioned.rng"};
  Random rng_ DYNAMAST_GUARDED_BY(rng_mu_);
  bool sealed_ = false;
};

}  // namespace dynamast::baselines

#endif  // DYNAMAST_BASELINES_PARTITIONED_SYSTEM_H_
