#!/usr/bin/env python3
"""Perf-trajectory trend report and ratcheted regression gate.

Compares the newest committed BENCH_*.json point against its predecessor
and prints per-(bench, point, system) throughput and p99 deltas. In
``--check`` mode the deltas are also gated: a throughput drop beyond
``--tput-drop-pct`` or a p99 rise beyond ``--p99-rise-pct`` fails the
run unless the series is waived in BENCH_WAIVERS.json.

Waiver file (repo root, optional)::

    {"version": 1,
     "waivers": [
       {"bench": "E1 ...",        # omitted key = wildcard
        "point": "clients=12",
        "system": "dynamast",
        "metric": "throughput",   # "throughput" | "p99_us" | omitted = both
        "through": "BENCH_0009.json",  # newest basename the waiver covers
        "reason": "why this regression is accepted"}]}

``reason`` and ``through`` are mandatory: a waiver is a dated, justified
exception, not a mute button. Once the trajectory moves past ``through``
the waiver stops matching and should be deleted.

Exit status:
  0  trend printed; in --check mode, no unwaived regression
  1  --check mode only: at least one unwaived regression
  2  usage error or malformed BENCH_*.json / BENCH_WAIVERS.json
  3  no trajectory data (fewer than one point; check.sh records SKIP)
"""

import argparse
import glob
import json
import os
import re
import sys

WAIVER_KEYS = {"bench", "point", "system", "metric", "through", "reason"}
METRICS = ("throughput", "p99_us")


def load_points(root):
    paths = sorted(
        p for p in glob.glob(os.path.join(root, "BENCH_*.json"))
        if re.fullmatch(r"BENCH_\d+\.json", os.path.basename(p)))
    return paths


def index(doc):
    return {(r["bench"], r["point"], r["system"]): r
            for r in doc.get("results", [])}


def fmt_delta(new, old, invert=False):
    if old in (0, None) or new is None:
        return "n/a"
    pct = (new - old) / old * 100.0
    arrow = "+" if pct >= 0 else ""
    good = (pct >= 0) != invert
    return "%s%.1f%%%s" % (arrow, pct, "" if good else " (worse)")


def load_waivers(root, newest_basename):
    """Returns the waivers applicable to `newest_basename`.

    Raises ValueError on a malformed file: a waiver that cannot be
    parsed must fail the gate loudly, not silently stop waiving.
    """
    path = os.path.join(root, "BENCH_WAIVERS.json")
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("version") != 1:
        raise ValueError("BENCH_WAIVERS.json: expected \"version\": 1")
    waivers = doc.get("waivers")
    if not isinstance(waivers, list):
        raise ValueError("BENCH_WAIVERS.json: \"waivers\" must be a list")
    active = []
    for i, w in enumerate(waivers):
        if not isinstance(w, dict):
            raise ValueError("BENCH_WAIVERS.json: waiver %d is not an object"
                             % i)
        unknown = set(w) - WAIVER_KEYS
        if unknown:
            raise ValueError("BENCH_WAIVERS.json: waiver %d has unknown "
                             "keys %s" % (i, sorted(unknown)))
        if not w.get("reason"):
            raise ValueError("BENCH_WAIVERS.json: waiver %d is missing the "
                             "mandatory \"reason\"" % i)
        through = w.get("through")
        if not through:
            raise ValueError("BENCH_WAIVERS.json: waiver %d is missing the "
                             "mandatory \"through\" bound" % i)
        if w.get("metric") not in (None,) + METRICS:
            raise ValueError("BENCH_WAIVERS.json: waiver %d metric must be "
                             "one of %s" % (i, list(METRICS)))
        # Basenames sort like the trajectory (zero-padded); a waiver is
        # active while the newest point is at or before its bound.
        if newest_basename <= through:
            active.append(w)
    return active


def waived(waivers, key, metric):
    bench, point, system = key
    for w in waivers:
        if w.get("bench", bench) != bench:
            continue
        if w.get("point", point) != point:
            continue
        if w.get("system", system) != system:
            continue
        if w.get("metric", metric) != metric:
            continue
        return w
    return None


def main():
    parser = argparse.ArgumentParser(
        description="bench trajectory trend report / regression gate")
    parser.add_argument("--check", action="store_true",
                        help="gate mode: exit 1 on an unwaived regression")
    parser.add_argument("--tput-drop-pct", type=float, default=30.0,
                        help="max tolerated throughput drop (default 30)")
    parser.add_argument("--p99-rise-pct", type=float, default=75.0,
                        help="max tolerated p99 latency rise (default 75)")
    parser.add_argument("--root", default=None,
                        help="directory holding BENCH_*.json "
                             "(default: repo root; used by test fixtures)")
    args = parser.parse_args()
    if args.tput_drop_pct < 0 or args.p99_rise_pct < 0:
        print("bench-trend: thresholds must be non-negative", file=sys.stderr)
        return 2

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = load_points(root)
    if not paths:
        print("bench-trend: no BENCH_*.json trajectory points yet")
        return 3
    newest = paths[-1]
    try:
        with open(newest, encoding="utf-8") as f:
            new_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("bench-trend: %s: %s" % (newest, e), file=sys.stderr)
        return 2
    if len(paths) == 1:
        print("bench-trend: first trajectory point %s (%d results)" %
              (os.path.basename(newest), len(new_doc.get("results", []))))
        return 0
    prev = paths[-2]
    try:
        with open(prev, encoding="utf-8") as f:
            prev_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("bench-trend: %s: %s" % (prev, e), file=sys.stderr)
        return 2
    try:
        waivers = load_waivers(root, os.path.basename(newest))
    except (ValueError, json.JSONDecodeError, OSError) as e:
        print("bench-trend: %s" % e, file=sys.stderr)
        return 2

    new_idx, prev_idx = index(new_doc), index(prev_doc)
    mode = "gate" if args.check else "report"
    print("bench-trend (%s): %s vs %s" %
          (mode, os.path.basename(newest), os.path.basename(prev)))
    regressions = []
    waived_count = 0
    for key in sorted(new_idx):
        n = new_idx[key]
        p = prev_idx.get(key)
        if p is None:
            print("  %s/%s %s: new series (tput=%.1f)" %
                  (key[0], key[1], key[2], n.get("throughput", 0.0)))
            continue
        line = "  %s/%s %s: tput %s" % (
            key[0], key[1], key[2],
            fmt_delta(n.get("throughput"), p.get("throughput")))
        if "p99_us" in n and "p99_us" in p:
            line += ", p99 %s" % fmt_delta(n.get("p99_us"), p.get("p99_us"),
                                           invert=True)
        print(line)
        if not args.check:
            continue
        # Gate: throughput floor and p99 ceiling relative to the
        # predecessor point, per series.
        checks = []
        nt, pt = n.get("throughput"), p.get("throughput")
        if nt is not None and pt not in (0, None):
            drop = (pt - nt) / pt * 100.0
            if drop > args.tput_drop_pct:
                checks.append(("throughput",
                               "throughput dropped %.1f%% (limit %.0f%%)"
                               % (drop, args.tput_drop_pct)))
        n99, p99 = n.get("p99_us"), p.get("p99_us")
        if n99 is not None and p99 not in (0, None):
            rise = (n99 - p99) / p99 * 100.0
            if rise > args.p99_rise_pct:
                checks.append(("p99_us",
                               "p99 rose %.1f%% (limit %.0f%%)"
                               % (rise, args.p99_rise_pct)))
        for metric, msg in checks:
            w = waived(waivers, key, metric)
            if w is not None:
                waived_count += 1
                print("    WAIVED [%s] %s -- %s (through %s)" %
                      (metric, msg, w["reason"], w["through"]))
            else:
                regressions.append((key, metric, msg))
                print("    REGRESSION [%s] %s" % (metric, msg))
    for key in sorted(set(prev_idx) - set(new_idx)):
        print("  %s/%s %s: series disappeared" % key)

    if args.check:
        if regressions:
            print("bench-trend: FAIL -- %d unwaived regression(s); add a "
                  "justified waiver to BENCH_WAIVERS.json only if the "
                  "regression is intended" % len(regressions))
            return 1
        suffix = " (%d waived)" % waived_count if waived_count else ""
        print("bench-trend: OK -- thresholds tput-drop<=%.0f%% "
              "p99-rise<=%.0f%%%s" %
              (args.tput_drop_pct, args.p99_rise_pct, suffix))
    return 0


if __name__ == "__main__":
    sys.exit(main())
