#!/usr/bin/env python3
"""Reports the perf trajectory: newest BENCH_*.json vs its predecessor.

Prints per-(bench, point, system) throughput and p99 deltas. This is
report-only — the check.sh `bench-trend` stage surfaces the trend in
every run but never fails the build on it; perf regressions are gated
structurally by scripts/hpa.py instead.

Exit status: 0 when there are at least two points (deltas printed) or
exactly one (baseline point reported); 1 when no BENCH_*.json exists
(check.sh records the stage as SKIP).
"""

import glob
import json
import os
import re
import sys


def load_points(root):
    paths = sorted(
        p for p in glob.glob(os.path.join(root, "BENCH_*.json"))
        if re.fullmatch(r"BENCH_\d+\.json", os.path.basename(p)))
    return paths


def index(doc):
    return {(r["bench"], r["point"], r["system"]): r
            for r in doc.get("results", [])}


def fmt_delta(new, old, invert=False):
    if old in (0, None) or new is None:
        return "n/a"
    pct = (new - old) / old * 100.0
    arrow = "+" if pct >= 0 else ""
    good = (pct >= 0) != invert
    return "%s%.1f%%%s" % (arrow, pct, "" if good else " (worse)")


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = load_points(root)
    if not paths:
        print("bench-trend: no BENCH_*.json trajectory points yet")
        return 1
    newest = paths[-1]
    with open(newest, encoding="utf-8") as f:
        new_doc = json.load(f)
    if len(paths) == 1:
        print("bench-trend: first trajectory point %s (%d results)" %
              (os.path.basename(newest), len(new_doc.get("results", []))))
        return 0
    prev = paths[-2]
    with open(prev, encoding="utf-8") as f:
        prev_doc = json.load(f)
    new_idx, prev_idx = index(new_doc), index(prev_doc)
    print("bench-trend: %s vs %s" %
          (os.path.basename(newest), os.path.basename(prev)))
    for key in sorted(new_idx):
        n = new_idx[key]
        p = prev_idx.get(key)
        if p is None:
            print("  %s/%s %s: new series (tput=%.1f)" %
                  (key[0], key[1], key[2], n.get("throughput", 0.0)))
            continue
        line = "  %s/%s %s: tput %s" % (
            key[0], key[1], key[2],
            fmt_delta(n.get("throughput"), p.get("throughput")))
        if "p99_us" in n and "p99_us" in p:
            line += ", p99 %s" % fmt_delta(n.get("p99_us"), p.get("p99_us"),
                                           invert=True)
        print(line)
    for key in sorted(set(prev_idx) - set(new_idx)):
        print("  %s/%s %s: series disappeared" % key)
    return 0


if __name__ == "__main__":
    sys.exit(main())
