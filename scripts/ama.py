#!/usr/bin/env python3
"""ama.py - atomics & memory-order analyzer for the DynaMast tree.

Every ``std::atomic`` in the tree carries an implicit protocol: which
memory orders its operations need, which release-stores pair with which
acquire-loads, and whether its loads publish pointers that a reclaimer
could free.  TSan and the DPOR explorer only check the interleavings
that actually execute; ama checks the declared protocol on every path,
statically, and ratchets the whole atomic surface before the lock-free
storage work grows it.

How it works
------------
The lexical C++ front end (comment/string blanking, scope
reconstruction, declaration model, receiver resolution) is shared with
csa.py and hpa.py and lives in ``cpp_model.py``; ama layers the atomic
semantics on top:

1.  Every atomic **field** is discovered: class members, namespace-scope
    globals, and function-local/static atomics, including atomics
    wrapped in smart pointers and containers
    (``shared_ptr<atomic<T>>``, ``vector<atomic<T>>``,
    ``array<Shard, N>`` whose element holds atomics).  Each field gets a
    stable id such as ``metrics::Counter::Shard::value`` or
    ``workloads::Driver::Run::stop``.
2.  Every atomic **operation** (load/store/RMW/CAS, ``++``/``--``,
    direct assignment) is resolved to its field through locals,
    parameters, range-for bindings, ``auto`` bindings, and member
    chains, with its explicit memory order parsed from the argument
    list (no order = the defaulted ``seq_cst``, recorded as
    ``default``).
3.  The DESIGN.md **atomic-field registry** (between
    ``<!-- atomic-field-registry:begin/end -->`` markers) assigns each
    field a role, and the role assigns each operation its legal orders:

    ``stat-counter``  monotonic tallies nothing synchronizes on: every
                      operation must be ``relaxed``.
    ``flag``          state another thread observes: ``acquire`` loads,
                      ``release`` stores, ``acq_rel`` RMWs.
    ``seqno``         version/sequence publication: ``release`` store /
                      ``acquire`` load, and a release-store with no
                      acquire-side load anywhere in the tree is an
                      ``unpaired-release`` error.
    ``publication``   pointer-typed handoff: same orders as ``flag``,
                      the value type must be a pointer, and every load
                      must sit inside a ``DYNAMAST_EPOCH_PROTECTED``
                      region (or be allowlisted) so reclamation is
                      provably deferred.

The rules
---------
``unregistered-atomic``   an atomic field with no registry row (hard).
``unknown-role``          a registry role outside the closed set (hard).
``publication-not-pointer``  a publication-role field whose value type
                          is not a pointer (hard).
``unresolved-atomic``     an explicit memory_order argument on a
                          receiver that resolves to no known field
                          (hard - the model must not silently drop
                          ordered operations).
``defaulted-order``       a registered field operated on with the
                          defaulted seq_cst order (allowlistable).
``role-order``            an explicit order the field's role forbids
                          (allowlistable).
``unpaired-release``      a release-store on a flag/seqno/publication
                          field with no acquire-side load anywhere in
                          the TU set (allowlistable).
``epoch-unprotected``     a publication load outside any
                          ``DYNAMAST_EPOCH_PROTECTED`` region
                          (allowlistable).
``counter-update-race``   a non-RMW store to a stat-counter in a
                          function that also loads it - a classic
                          load-then-store lost update; use an RMW
                          (allowlistable).

The ratchet
-----------
``AMA_BASELINE.json`` (committed at the repo root) freezes the edge set
``(field, function, op, orders)``.  ``--check`` recomputes it and fails
on any new or missing edge, on any unsuppressed violation, and on any
allowlist entry that is unjustified, names an unregistered field, uses
a rule that is not allowlistable, or matches no current violation
(stale).  ``--update`` refuses to rewrite the baseline while violations
are unresolved, then writes deterministically (sorted keys, two-space
indent) so consecutive runs are byte-identical.

Known limitations (by construction, all deterministic): atomics reached
through raw pointers or references passed across functions are not
tracked; ``(*p).load()`` spellings are invisible (the tree uses ``->``);
``std::atomic_load(&x)`` free-function spellings are not used here and
not modeled.  Unlike csa/hpa, the scheduler/DPOR internals are NOT
exempt - their atomics are exactly the ones worth auditing.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field as dc_field

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpp_model
from cpp_model import line_of, strip_root

BASELINE_NAME = "AMA_BASELINE.json"
REGISTRY_BEGIN = "<!-- atomic-field-registry:begin -->"
REGISTRY_END = "<!-- atomic-field-registry:end -->"

ROLES = ("stat-counter", "flag", "seqno", "publication")
ALLOWLISTABLE = ("defaulted-order", "role-order", "unpaired-release",
                 "epoch-unprotected", "counter-update-race")

# method -> op kind (None = no memory-order semantics worth checking)
ATOMIC_METHODS = {
    "load": "load",
    "wait": "load",
    "store": "store",
    "clear": "store",
    "exchange": "rmw",
    "fetch_add": "rmw",
    "fetch_sub": "rmw",
    "fetch_and": "rmw",
    "fetch_or": "rmw",
    "fetch_xor": "rmw",
    "test_and_set": "rmw",
    "compare_exchange_weak": "cas",
    "compare_exchange_strong": "cas",
    "notify_one": None,
    "notify_all": None,
}

# role -> op kind -> allowed primary orders.  seq_cst is never on the
# menu: a field whose protocol genuinely needs seq_cst would get its own
# role; everything in this tree is pairwise acquire/release or weaker.
ROLE_ORDERS = {
    "stat-counter": {
        "load": {"relaxed"},
        "store": {"relaxed"},
        "rmw": {"relaxed"},
        "cas": {"relaxed"},
    },
    "flag": {
        "load": {"acquire"},
        "store": {"release"},
        "rmw": {"acq_rel"},
        "cas": {"acq_rel", "acquire", "release"},
    },
    "seqno": {
        "load": {"acquire"},
        "store": {"release"},
        "rmw": {"acq_rel", "release"},
        "cas": {"acq_rel", "release"},
    },
    "publication": {
        "load": {"acquire"},
        "store": {"release"},
        "rmw": {"acq_rel", "release"},
        "cas": {"acq_rel", "release", "acquire"},
    },
}

ACQUIRE_SIDE = {"acquire", "acq_rel", "seq_cst", "default"}
RELEASE_SIDE = {"release", "acq_rel"}

CONTAINERS = ("vector", "array", "deque")
POINTERS = ("unique_ptr", "shared_ptr")

_DECL_KEYWORDS = {
    "return", "delete", "throw", "new", "case", "goto", "else", "using",
    "typedef", "break", "continue", "co_return", "co_await", "public",
    "private", "protected", "template", "friend", "operator", "namespace",
    "static_assert", "if", "for", "while", "switch", "do", "sizeof",
}

_CHAIN = r"(?:\w+(?:\[[^\]]*\])?\s*(?:->|\.)\s*)*\w+(?:\[[^\]]*\])?"

_OP_RE = re.compile(
    r"(%s)\s*(->|\.)\s*(%s)\s*\(" % (_CHAIN,
                                     "|".join(sorted(ATOMIC_METHODS))))
_ORDER_RE = re.compile(r"\bmemory_order(?:\s*::\s*|_)\s*(\w+)")
_INCDEC_PRE_RE = re.compile(r"(\+\+|--)\s*(%s)" % _CHAIN)
_INCDEC_POST_RE = re.compile(r"(%s)\s*(\+\+|--)" % _CHAIN)
_ASSIGN_RE = re.compile(r"(%s)\s*([+\-|&^]?=)(?![=])" % _CHAIN)
_EPOCH_RE = re.compile(r"\bDYNAMAST_EPOCH_PROTECTED\b")
_PTR_ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*[^;=()]*\(\s*\*\s*\)")

# Declaration with its raw (unsimplified) type text.  The type keeps its
# full template spelling so wrapper layers (shared_ptr<atomic<T>>,
# array<Shard, N>) survive where cpp_model.simplify_type would collapse
# them to a single name.
_RAW_TYPE = r"(?:[\w:]+\s+)*[\w:]+(?:\s*<.*>)?"
_MEMBER_DECL_RE = re.compile(
    r"^(%s)[\s*&]+(\w+)\s*(?:\{.*\}|=.*)?$" % _RAW_TYPE, re.S)
_LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}()])\s*"
    r"(?:(?:const|static|thread_local|constexpr|mutable)\s+)*"
    r"((?:std\s*::\s*)?[\w:]+(?:\s*<[\w:\s,*&<>()]*>)?)"
    r"\s*[&*]*\s+(\w+)\s*(?=[=;({:,)\[])")
_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?"
    r"([\w:]+(?:\s*<[\w:\s,*&<>()]*>)?|auto)"
    r"\s*[&*]*\s*(\w+)\s*:\s*([^();]+?)\s*\)")
_AUTO_BIND_RE = re.compile(
    r"(?:^|[;{}])\s*(?:const\s+)?auto\s*[&*]*\s+(\w+)\s*=\s*([^;]+);")

ATOMIC_TYPEDEFS = {
    "bool": "bool", "char": "char", "int": "int", "uint": "unsigned int",
    "long": "long", "llong": "long long", "size_t": "size_t",
    "int32_t": "int32_t", "int64_t": "int64_t",
    "uint32_t": "uint32_t", "uint64_t": "uint64_t",
}


# ---------------------------------------------------------------------------
# Type peeling


def _split_top(args):
    """Splits template-argument text at top-level commas."""
    out, depth, start = [], 0, 0
    for i, c in enumerate(args):
        if c in "<(":
            depth += 1
        elif c in ">)":
            depth -= 1
        elif c == "," and depth == 0:
            out.append(args[start:i])
            start = i + 1
    out.append(args[start:])
    return [a.strip() for a in out]


def _norm_type(t):
    t = re.sub(r"\b(?:const|volatile|mutable|static|inline|constexpr|"
               r"thread_local|typename)\b", " ", t)
    t = re.sub(r"\s+", " ", t).strip()
    while t.endswith("&"):
        t = t[:-1].strip()
    t = re.sub(r"^std\s*::\s*", "", t)
    return t


def peel(type_text):
    """One wrapper layer of a raw type: (kind, inner).

    kind: 'container' | 'pointer' | 'value' (optional<T>) | 'atomic' |
    'class' (inner = simple class name) | None (unparseable).
    """
    t = _norm_type(type_text)
    if not t:
        return (None, "")
    if t.endswith("*"):
        return ("pointer", t[:-1].strip())
    m = re.match(r"([\w:]+)\s*<(.*)>$", t, re.S)
    if m:
        name = m.group(1).rsplit("::", 1)[-1]
        args = _split_top(m.group(2))
        if name in CONTAINERS:
            return ("container", args[0])
        if name in POINTERS:
            return ("pointer", args[0])
        if name == "optional":
            return ("value", args[0])
        if name == "atomic":
            return ("atomic", args[0])
        return ("class", name)
    m = re.match(r"atomic_(\w+)$", t)
    if m and m.group(1) in ATOMIC_TYPEDEFS:
        return ("atomic", ATOMIC_TYPEDEFS[m.group(1)])
    simple = t.rsplit("::", 1)[-1].split()[-1] if t.split() else ""
    if re.fullmatch(r"\w+", simple):
        return ("class", simple)
    return (None, "")


def atomic_value_type(raw):
    """Inner T when `raw` is an atomic under wrapper layers, else None."""
    t = raw
    for _ in range(6):
        kind, inner = peel(t)
        if kind == "atomic":
            return inner
        if kind in ("container", "pointer", "value"):
            t = inner
            continue
        return None
    return None


def is_atomic_raw(raw):
    return peel(raw)[0] == "atomic"


def _owns_atomic(raw):
    """True when `raw` holds an atomic by value (directly or inside
    containers).  Pointer layers (shared_ptr<atomic<T>> parameters and
    the like) alias an atomic owned elsewhere - the owner is the field
    that must be registered, not every handle to it."""
    t = raw
    for _ in range(6):
        kind, inner = peel(t)
        if kind == "atomic":
            return True
        if kind in ("container", "value"):
            t = inner
            continue
        return False
    return False


# ---------------------------------------------------------------------------
# Discovery


@dataclass
class AtomicField:
    fid: str            # registry id, e.g. metrics::Counter::Shard::value
    cls: str            # innermost owning class simple name ('' if none)
    name: str           # field / variable simple name
    file: str
    line: int
    raw: str            # full declared type text
    value_type: str     # T of the underlying atomic<T>
    is_pointer: bool    # T is a pointer (or a function-pointer alias)


@dataclass
class OpSite:
    field: "AtomicField|None"   # None => unresolved receiver
    func: str                   # holder function (stripped qual)
    op: str                     # method name, '++', '--', '=', '+=', ...
    kind: str                   # load | store | rmw | cas | none
    orders: tuple               # ('relaxed',) / ('default',) / cas pair
    file: str
    line: int
    in_epoch: bool
    receiver: str = ""          # text, for unresolved diagnostics


@dataclass
class Model:
    project: object
    fields: list = dc_field(default_factory=list)
    by_cls: dict = dc_field(default_factory=dict)     # (cls,name) -> field
    by_global: dict = dc_field(default_factory=dict)  # name -> field (ns)
    by_name: dict = dc_field(default_factory=dict)    # name -> field|None
    member_raw: dict = dc_field(default_factory=dict)  # (cls,name) -> raw
    global_raw: dict = dc_field(default_factory=dict)  # name -> raw type
    ptr_aliases: set = dc_field(default_factory=set)
    sites: list = dc_field(default_factory=list)


def _scope_ns(scope):
    """Namespace path of `scope` including scope itself if a namespace."""
    parts = []
    s = scope
    while s is not None:
        if s.kind == "namespace" and s.name:
            parts.append(s.name)
        s = s.parent
    return "::".join(reversed(parts))


def _class_chain(scope):
    """Names of the class scopes enclosing (and including) `scope`."""
    parts = []
    s = scope
    while s is not None:
        if s.kind == "class":
            parts.append(s.name)
        s = s.parent
    return list(reversed(parts))


def _field_id(scope, name):
    ns = _scope_ns(scope)
    classes = _class_chain(scope)
    qual = "::".join([p for p in [ns] + classes if p] + [name])
    return strip_root(qual)


def _fn_qual(fn_scope):
    ns = _scope_ns(fn_scope)
    classes = _class_chain(fn_scope)
    name = fn_scope.name
    if "::" in name:
        # Out-of-line Class::Method: the name already carries the class.
        qual = "::".join([p for p in [ns] if p] + [name])
    else:
        qual = "::".join([p for p in [ns] + classes if p] + [name])
    return strip_root(qual)


def _register(model, f):
    model.fields.append(f)
    if f.cls:
        model.by_cls.setdefault((f.cls, f.name), f)
    if f.name in model.by_name:
        model.by_name[f.name] = None        # ambiguous
    else:
        model.by_name[f.name] = f


def _make_field(model, scope, rel, line, raw, name, fid):
    value = atomic_value_type(raw)
    ptr = value.rstrip().endswith("*") or \
        _norm_type(value).rsplit("::", 1)[-1] in model.ptr_aliases
    classes = _class_chain(scope)
    return AtomicField(fid=fid, cls=classes[-1] if classes else "",
                      name=name, file=rel, line=line, raw=raw,
                      value_type=_norm_type(value), is_pointer=ptr)


def collect_ptr_aliases(model):
    for rel in sorted(model.project.blanked):
        for m in _PTR_ALIAS_RE.finditer(model.project.blanked[rel]):
            model.ptr_aliases.add(m.group(1))


def discover_fields(model):
    """Class members and namespace-scope atomics (locals come later)."""
    project = model.project
    for rel in sorted(project.files):
        blanked = project.blanked[rel]
        for scope in project.scopes[rel]:
            if scope.kind not in ("class", "namespace"):
                continue
            for start, stmt in cpp_model.iter_statements(blanked, scope):
                stmt = re.sub(r"\b(?:public|private|protected)\s*:", " ",
                              stmt)
                stmt = re.sub(r"\bDYNAMAST_\w+\s*\([^()]*\)", " ", stmt)
                s = stmt.strip()
                if not s or "(" in s.split("<")[0].split("{")[0]:
                    # A paren before any template/initializer opens a
                    # method declaration, not a field.
                    continue
                dm = _MEMBER_DECL_RE.match(s)
                if not dm:
                    continue
                first = re.split(r"[\s:<]", dm.group(1).strip())[0]
                if first in _DECL_KEYWORDS:
                    continue
                raw, name = dm.group(1).strip(), dm.group(2)
                if "(" in re.sub(r"<[^<>]*(?:<[^<>]*>[^<>]*)*>", "", raw):
                    continue                # function declaration
                nm = re.search(r"\b%s\b" % re.escape(name),
                               blanked[start:scope.close])
                line = line_of(blanked, start + (nm.start() if nm else 0))
                if scope.kind == "class":
                    model.member_raw.setdefault((scope.name, name), raw)
                    if atomic_value_type(raw) is not None:
                        fid = _field_id(scope, name)
                        f = _make_field(model, scope, rel, line, raw,
                                        name, fid)
                        model.by_cls.setdefault((scope.name, name), f)
                        _register_unique(model, f)
                else:
                    model.global_raw.setdefault(name, raw)
                    if atomic_value_type(raw) is not None:
                        fid = _field_id(scope.parent, name) \
                            if False else _global_fid(scope, name)
                        f = AtomicField(
                            fid=fid, cls="", name=name, file=rel,
                            line=line, raw=raw,
                            value_type=_norm_type(
                                atomic_value_type(raw)),
                            is_pointer=_is_ptr_value(
                                model, atomic_value_type(raw)))
                        model.by_global.setdefault(name, f)
                        _register_unique(model, f)


def _is_ptr_value(model, value):
    return value.rstrip().endswith("*") or \
        _norm_type(value).rsplit("::", 1)[-1] in model.ptr_aliases


def _global_fid(scope, name):
    ns = _scope_ns(scope)
    return strip_root("::".join([p for p in [ns] if p] + [name]))


def _register_unique(model, f):
    # Deduplicate: a header parsed once can still hit the same decl via
    # class + namespace passes; key on fid.
    for existing in model.fields:
        if existing.fid == f.fid:
            return
    model.fields.append(f)
    if f.name in model.by_name:
        if model.by_name[f.name] is not f:
            model.by_name[f.name] = None    # ambiguous
    else:
        model.by_name[f.name] = f


# ---------------------------------------------------------------------------
# Per-function resolution context


class FnCtx:
    def __init__(self, model, rel, fn_scope):
        self.model = model
        self.rel = rel
        self.fn = fn_scope
        blanked = model.project.blanked[rel]
        self.body = blanked[fn_scope.open + 1:fn_scope.close]
        self.base = fn_scope.open + 1
        self.text = fn_scope.header + self.body
        self.qual = _fn_qual(fn_scope)
        self.classes = _class_chain(fn_scope)
        if "::" in fn_scope.name:
            self.classes = self.classes + [fn_scope.name.split("::")[-2]]
        self.locals_raw = {}       # name -> raw type text
        self.local_atomics = {}    # name -> AtomicField
        self.bindings = {}         # name -> ('raw', text)|('field', f)
        self._collect_locals()
        self._collect_bindings()
        self.epochs = []
        for m in _EPOCH_RE.finditer(self.body):
            off = self.base + m.start()
            end = cpp_model.enclosing_block_end(blanked, off, fn_scope.close)
            self.epochs.append((off, end))

    def _collect_locals(self):
        model = self.model
        for m in _LOCAL_DECL_RE.finditer(self.text):
            raw, name = m.group(1), m.group(2)
            first = re.split(r"[\s:<]", raw.strip())[0]
            if first in _DECL_KEYWORDS or first == "auto":
                continue
            self.locals_raw[name] = raw
            if _owns_atomic(raw) and name not in self.local_atomics:
                # Offset of the declaration inside the body (header
                # declarations - atomic parameters - use the open line).
                off = m.start(1) - len(self.fn.header)
                line = line_of(model.project.blanked[self.rel],
                               self.base + max(off, 0))
                fid = self.qual + "::" + name
                f = AtomicField(
                    fid=fid, cls="", name=name, file=self.rel, line=line,
                    raw=raw,
                    value_type=_norm_type(atomic_value_type(raw)),
                    is_pointer=_is_ptr_value(model,
                                             atomic_value_type(raw)))
                self.local_atomics[name] = f
                _register_unique(model, f)

    def _collect_bindings(self):
        # Prefix the open brace the body slice drops, so the statement
        # anchor in _AUTO_BIND_RE can match the body's first statement.
        text = "{" + self.body
        for m in _RANGE_FOR_RE.finditer(text):
            declared, name, container = m.group(1), m.group(2), m.group(3)
            if declared != "auto":
                continue               # explicit type: locals_raw has it
            ent = self._resolve_entity(container.strip())
            if ent is None:
                continue
            raw, f = ent
            kind, inner = peel(raw)
            if kind == "container":
                self.bindings[name] = (inner, f)
        for m in _AUTO_BIND_RE.finditer(text):
            name, expr = m.group(1), m.group(2).strip()
            if not re.fullmatch(_CHAIN, expr):
                continue
            ent = self._resolve_entity(expr)
            if ent is not None:
                self.bindings[name] = ent

    # -- chain machinery ---------------------------------------------------

    def _lookup_first(self, name, indexed, allow_name_fallback):
        """(raw, AtomicField|None) for the head of a chain, or None."""
        model = self.model
        if name == "this" and self.classes:
            return (self.classes[-1], None)
        if name in self.local_atomics:
            f = self.local_atomics[name]
            return (f.raw, f)
        if name in self.bindings:
            raw, f = self.bindings[name]
            if f is None and is_atomic_raw(raw):
                # element of an atomic-bearing container: identity is
                # the container field, tracked by the binding creator
                pass
            return (raw, f)
        if name in self.locals_raw:
            return (self.locals_raw[name], None)
        for cls in reversed(self.classes):
            if (cls, name) in model.member_raw:
                return (model.member_raw[(cls, name)],
                        model.by_cls.get((cls, name)))
        if name in model.global_raw:
            return (model.global_raw[name], model.by_global.get(name))
        if allow_name_fallback:
            f = model.by_name.get(name)
            if f is not None:
                return (f.raw, f)
        return None

    def _apply_access(self, raw, f, indexed, sep):
        """Peels wrapper layers for `[...]` and `->` accesses."""
        for _ in range(indexed):
            kind, inner = peel(raw)
            if kind in ("container", "pointer"):
                raw = inner
            else:
                return None
        if sep == "->":
            kind, inner = peel(raw)
            if kind in ("pointer", "value"):
                raw = inner
            elif kind == "class":
                pass                       # raw pointer, star was eaten
            else:
                return None
        return (raw, f)

    def _resolve_entity(self, chain, allow_name_fallback=False):
        """Resolves a member chain to (raw type, AtomicField|None)."""
        toks = []
        for m in re.finditer(r"(\w+)((?:\[[^\]]*\])*)\s*(->|\.|$)", chain):
            if not m.group(1):
                continue
            toks.append((m.group(1),
                         m.group(2).count("["),
                         m.group(3) or ""))
            if not m.group(3):
                break
        if not toks:
            return None
        name, indexed, sep = toks[0]
        ent = self._lookup_first(name, indexed, allow_name_fallback)
        if ent is None:
            return None
        raw, f = ent
        ent = self._apply_access(raw, f, indexed, sep if sep in
                                 ("->",) else "")
        if ent is None:
            return None
        raw, f = ent
        for name, indexed, sep in toks[1:]:
            kind, cls = peel(raw)
            if kind != "class":
                return None
            member = None
            if (cls, name) in self.model.member_raw:
                member = self.model.member_raw[(cls, name)]
            if member is None:
                return None
            f = self.model.by_cls.get((cls, name))
            ent = self._apply_access(member, f, indexed,
                                     sep if sep in ("->",) else "")
            if ent is None:
                return None
            raw, f = ent
        return (raw, f)

    def resolve_method_receiver(self, chain, sep):
        """AtomicField for `chain.method(...)`, or None."""
        ent = self._resolve_entity(chain, allow_name_fallback=True)
        if ent is None:
            return None
        raw, f = ent
        if sep == "->":
            kind, inner = peel(raw)
            if kind in ("pointer", "value"):
                raw = inner
        if is_atomic_raw(raw):
            return f
        return None

    def resolve_lvalue(self, chain):
        """AtomicField when `chain` IS an atomic lvalue (no unwrap)."""
        ent = self._resolve_entity(chain, allow_name_fallback=False)
        if ent is None:
            return None
        raw, f = ent
        if is_atomic_raw(raw):
            return f
        return None

    def in_epoch(self, offset):
        return any(s < offset < e for (s, e) in self.epochs)


# ---------------------------------------------------------------------------
# Operation extraction


def _call_args(text, open_paren):
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i]
    return text[open_paren + 1:]


def _stmt_start(body, offset):
    best = 0
    for ch in ";{}":
        p = body.rfind(ch, 0, offset)
        if p + 1 > best:
            best = p + 1
    return best


def extract_ops(model):
    project = model.project
    for rel in sorted(project.files):
        blanked = project.blanked[rel]
        for fn in (s for s in project.scopes[rel]
                   if s.kind == "function"):
            ctx = FnCtx(model, rel, fn)
            _extract_fn_ops(model, ctx)


def _extract_fn_ops(model, ctx):
    blanked = model.project.blanked[ctx.rel]
    body, base = ctx.body, ctx.base

    def add(field, op, kind, orders, offset, receiver=""):
        model.sites.append(OpSite(
            field=field, func=ctx.qual, op=op, kind=kind,
            orders=tuple(orders), file=ctx.rel,
            line=line_of(blanked, base + offset),
            in_epoch=ctx.in_epoch(base + offset), receiver=receiver))

    for m in _OP_RE.finditer(body):
        chain, sep, method = m.group(1), m.group(2), m.group(3)
        args = _call_args(body, m.end() - 1)
        orders = _ORDER_RE.findall(args)
        f = ctx.resolve_method_receiver(chain, sep)
        if f is None:
            if orders:
                add(None, method, "unresolved", orders, m.start(),
                    receiver=re.sub(r"\s+", "", chain))
            continue
        kind = ATOMIC_METHODS[method]
        if kind is None:
            add(f, method, "none", (), m.start())
            continue
        if not orders:
            orders = ["default"]
        if kind == "cas" and len(orders) > 2:
            orders = orders[:2]
        if kind != "cas" and len(orders) > 1:
            orders = orders[:1]
        add(f, method, kind, orders, m.start())

    claimed = set()
    for m in _INCDEC_PRE_RE.finditer(body):
        f = ctx.resolve_lvalue(m.group(2))
        if f is not None:
            add(f, m.group(1), "rmw", ["default"], m.start())
            claimed.add(m.start(2))
    for m in _INCDEC_POST_RE.finditer(body):
        if m.start(1) in claimed:
            continue
        f = ctx.resolve_lvalue(m.group(1))
        if f is not None:
            add(f, m.group(2), "rmw", ["default"], m.start())
    for m in _ASSIGN_RE.finditer(body):
        lead = body[_stmt_start(body, m.start(1)):m.start(1)]
        if re.search(r"[>\w&*.]\s*$", lead):
            continue            # a declaration (type precedes the name)
        f = ctx.resolve_lvalue(m.group(1))
        if f is None:
            continue
        op = m.group(2)
        kind = "store" if op == "=" else "rmw"
        add(f, op, kind, ["default"], m.start())


# ---------------------------------------------------------------------------
# Registry, rules, violations


def parse_registry(root):
    """{field id: role} from DESIGN.md's atomic-field registry table."""
    design = os.path.join(root, "DESIGN.md")
    entries = {}
    try:
        with open(design, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return entries
    begin = text.find(REGISTRY_BEGIN)
    end = text.find(REGISTRY_END)
    if begin < 0 or end < 0:
        return entries
    for row in text[begin:end].splitlines():
        m = re.match(r"\|\s*`([^`]+)`\s*\|\s*([^|]+?)\s*\|", row)
        if m:
            entries[m.group(1)] = m.group(2).strip("`")
    return entries


@dataclass
class Violation:
    rule: str
    field: str          # field id ('' only for unresolved receivers)
    func: str | None    # None for field-level rules
    message: str


def _order_str(orders):
    return ",".join(orders) if orders else "-"


def compute_violations(model, registry):
    out = []
    fields_by_id = {f.fid: f for f in model.fields}

    for f in sorted(model.fields, key=lambda f: f.fid):
        if f.fid not in registry:
            out.append(Violation(
                "unregistered-atomic", f.fid, None,
                "ama: unregistered-atomic: %s:%d: atomic field `%s` has "
                "no row in the DESIGN.md atomic-field registry (assign "
                "it a role: %s)" %
                (f.file, f.line, f.fid, ", ".join(ROLES))))

    for fid in sorted(registry):
        role = registry[fid]
        if role not in ROLES:
            out.append(Violation(
                "unknown-role", fid, None,
                "ama: unknown-role: DESIGN.md: registry row `%s` "
                "declares role %r, which is not in the closed role set "
                "(%s)" % (fid, role, ", ".join(ROLES))))
            continue
        f = fields_by_id.get(fid)
        if f is not None and role == "publication" and not f.is_pointer:
            out.append(Violation(
                "publication-not-pointer", fid, None,
                "ama: publication-not-pointer: %s:%d: `%s` has role "
                "publication but its value type `%s` is not a pointer "
                "(the epoch-protection rules only make sense for "
                "reclaimable pointees)" %
                (f.file, f.line, fid, f.value_type)))

    sites = sorted(model.sites, key=lambda s: (s.file, s.line, s.op))
    for s in sites:
        if s.field is None:
            out.append(Violation(
                "unresolved-atomic", "", s.func,
                "ama: unresolved-atomic: %s:%d: `%s.%s` passes an "
                "explicit memory_order but the receiver does not "
                "resolve to a known atomic field (extend the model or "
                "simplify the expression - ordered operations must not "
                "escape the audit)" %
                (s.file, s.line, s.receiver, s.op)))
            continue
        role = registry.get(s.field.fid)
        if role not in ROLE_ORDERS or s.kind == "none":
            continue
        if "default" in s.orders:
            want = sorted(ROLE_ORDERS[role].get(s.kind, ()))
            out.append(Violation(
                "defaulted-order", s.field.fid, s.func,
                "ama: defaulted-order: %s:%d: %s on `%s` (role %s) uses "
                "the defaulted seq_cst order; spell it explicitly "
                "(role allows: %s)" %
                (s.file, s.line, s.op, s.field.fid, role,
                 ", ".join(want) or "-")))
            continue
        allowed = ROLE_ORDERS[role].get(s.kind, set())
        primary = s.orders[0] if s.orders else "default"
        bad = primary not in allowed
        if not bad and s.kind == "cas" and len(s.orders) == 2:
            fail_ok = {"relaxed"} if role == "stat-counter" \
                else {"relaxed", "acquire"}
            bad = s.orders[1] not in fail_ok
        if bad:
            out.append(Violation(
                "role-order", s.field.fid, s.func,
                "ama: role-order: %s:%d: %s on `%s` uses %s but role %s "
                "allows {%s} for %s operations" %
                (s.file, s.line, s.op, s.field.fid,
                 _order_str(s.orders), role, ", ".join(sorted(allowed)),
                 s.kind)))
        if role == "publication" and s.kind == "load" and not s.in_epoch:
            out.append(Violation(
                "epoch-unprotected", s.field.fid, s.func,
                "ama: epoch-unprotected: %s:%d: load of publication "
                "field `%s` outside a DYNAMAST_EPOCH_PROTECTED region "
                "(the pointee could be reclaimed under the reader)" %
                (s.file, s.line, s.field.fid)))

    # counter-update-race: a plain store in a function that also loads.
    by_fn_field = {}
    for s in sites:
        if s.field is None:
            continue
        by_fn_field.setdefault((s.field.fid, s.func), []).append(s)
    for (fid, func) in sorted(by_fn_field):
        if registry.get(fid) != "stat-counter":
            continue
        group = by_fn_field[(fid, func)]
        loads = [s for s in group if s.kind == "load"]
        stores = [s for s in group if s.kind == "store"]
        if loads and stores:
            s = stores[0]
            out.append(Violation(
                "counter-update-race", fid, func,
                "ama: counter-update-race: %s:%d: %s both loads and "
                "plain-stores counter `%s` - a lost-update window; use "
                "a fetch_add/fetch_sub RMW" %
                (s.file, s.line, func, fid)))

    # unpaired-release: release-store with no acquire-side load anywhere.
    per_field = {}
    for s in sites:
        if s.field is not None:
            per_field.setdefault(s.field.fid, []).append(s)
    for fid in sorted(per_field):
        role = registry.get(fid)
        if role not in ("flag", "seqno", "publication"):
            continue
        group = per_field[fid]
        releases = [s for s in group
                    if s.kind in ("store", "rmw", "cas")
                    and s.orders and s.orders[0] in RELEASE_SIDE]
        acquires = [s for s in group
                    if s.kind in ("load", "rmw", "cas")
                    and (not s.orders or s.orders[0] in ACQUIRE_SIDE)]
        if releases and not acquires:
            s = releases[0]
            out.append(Violation(
                "unpaired-release", fid, None,
                "ama: unpaired-release: %s:%d: `%s` (role %s) is "
                "release-stored in %s but no acquire-side load exists "
                "anywhere in the tree (nothing can synchronize with "
                "the store)" % (s.file, s.line, fid, role, s.func)))
    return out


# ---------------------------------------------------------------------------
# Edges, baseline, allowlist


def collect_edges(model):
    """{(field, function, op, orders-tuple)} over all resolved sites."""
    edges = set()
    for s in model.sites:
        if s.field is None:
            continue
        edges.add((s.field.fid, s.func, s.op, tuple(s.orders)))
    return edges


def format_edge(key):
    fid, func, op, orders = key
    return "%s: %s -> %s[%s]" % (fid, func, op, _order_str(orders))


def edges_to_json(edges):
    out = []
    for (fid, func, op, orders) in sorted(edges):
        out.append({
            "field": fid,
            "function": func,
            "op": op,
            "orders": list(orders),
        })
    return out


def profile_document(edges, allowlist):
    return {
        "version": 1,
        "edges": edges_to_json(edges),
        "allowlist": allowlist,
    }


def dump_json(doc):
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def load_baseline(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError:
        return None
    except ValueError as e:
        raise SystemExit("ama: %s is not valid JSON: %s" % (path, e))


def allowlist_matches(entry, violation):
    if entry.get("rule") != violation.rule:
        return False
    if entry.get("field") != violation.field:
        return False
    fn = entry.get("function")
    return fn is None or fn == violation.func


def validate_allowlist(allowlist, registry, violations):
    problems = []
    for i, entry in enumerate(allowlist):
        where = "allowlist[%d] (%s / %s)" % (
            i, entry.get("rule", "?"), entry.get("field", "?"))
        if not str(entry.get("justification", "")).strip():
            problems.append("ama: allowlist: %s has no justification" %
                            where)
        rule = entry.get("rule", "")
        if rule not in ALLOWLISTABLE:
            problems.append(
                "ama: allowlist: %s names rule %r which is not "
                "allowlistable (only: %s)" %
                (where, rule, ", ".join(ALLOWLISTABLE)))
        fid = entry.get("field", "")
        if fid not in registry:
            problems.append(
                "ama: allowlist: %s names field %r which is not in the "
                "DESIGN.md atomic-field registry" % (where, fid))
        if not any(allowlist_matches(entry, v) for v in violations):
            problems.append(
                "ama: allowlist: %s matches no current violation (stale "
                "entry: the operation was fixed or removed; delete the "
                "entry)" % where)
    return problems


def split_violations(violations, allowlist):
    """(hard, unsuppressed-soft) message lists."""
    hard, soft = [], []
    for v in violations:
        if v.rule not in ALLOWLISTABLE:
            hard.append(v.message)
        elif not any(allowlist_matches(e, v) for e in allowlist):
            soft.append(
                v.message + "\n  fix the site, or add an allowlist "
                "entry {rule, field, justification} to %s" %
                BASELINE_NAME)
    return hard, soft


def diff_against_baseline(edges, baseline):
    base_edges = {(e["field"], e["function"], e["op"],
                   tuple(e.get("orders", [])))
                  for e in baseline.get("edges", [])}
    new = sorted(k for k in edges if k not in base_edges)
    gone = sorted(k for k in base_edges if k not in edges)
    problems = []
    for key in new:
        problems.append(
            "ama: new-edge: %s\n  new atomic traffic; review the order "
            "against the field's registry role, then run scripts/ama.py "
            "--update to record it in %s" % (format_edge(key),
                                             BASELINE_NAME))
    for key in gone:
        problems.append(
            "ama: missing-edge: %s\n  the atomic surface shrank (good); "
            "run scripts/ama.py --update to ratchet the baseline down" %
            format_edge(key))
    return problems


# ---------------------------------------------------------------------------
# CLI


def analyze(root):
    project = cpp_model.load_project(root, tool="ama")
    model = Model(project=project)
    collect_ptr_aliases(model)
    discover_fields(model)
    extract_ops(model)
    return model


def discover_atomics(project):
    """Field discovery only - dynamast-lint's atomic-registry rule uses
    this to detect stale registry rows without re-implementing the
    declaration model."""
    model = Model(project=project)
    collect_ptr_aliases(model)
    discover_fields(model)
    # Function-local atomics are discovered as a side effect of building
    # each function's resolution context.
    for rel in sorted(project.files):
        for fn in (s for s in project.scopes[rel]
                   if s.kind == "function"):
            FnCtx(model, rel, fn)
    return model.fields


def main(argv):
    parser = argparse.ArgumentParser(
        prog="ama.py",
        description="Atomics & memory-order analyzer (see module "
        "docstring).")
    parser.add_argument("--root", default=None,
                        help="repository root (default: script's parent)")
    parser.add_argument("--baseline", default=None,
                        help="baseline path (default: <root>/%s)" %
                        BASELINE_NAME)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="verify the profile against the baseline "
                      "(default mode)")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the baseline (refuses while "
                      "violations are unresolved)")
    mode.add_argument("--dump", action="store_true",
                      help="print the current profile JSON to stdout")
    mode.add_argument("--list-fields", action="store_true",
                      help="print every discovered atomic field id")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print("ama: no src/ under %s" % root, file=sys.stderr)
        return 2
    baseline_path = args.baseline or os.path.join(root, BASELINE_NAME)

    model = analyze(root)
    registry = parse_registry(root)
    violations = compute_violations(model, registry)
    edges = collect_edges(model)
    baseline = load_baseline(baseline_path)
    allowlist = (baseline or {}).get("allowlist", [])

    if args.list_fields:
        for f in sorted(model.fields, key=lambda f: f.fid):
            role = registry.get(f.fid, "<unregistered>")
            print("%-55s %-12s %s:%d" % (f.fid, role, f.file, f.line))
        return 0

    if args.dump:
        sys.stdout.write(dump_json(profile_document(edges, allowlist)))
        return 0

    hard, soft = split_violations(violations, allowlist)
    problems = hard + soft
    problems += validate_allowlist(allowlist, registry, violations)

    if args.update:
        if problems:
            problems.append(
                "ama: refusing to update the baseline while violations "
                "or allowlist problems are unresolved")
            print("\n".join(problems), file=sys.stderr)
            return 1
        with open(baseline_path, "w", encoding="utf-8") as f:
            f.write(dump_json(profile_document(edges, allowlist)))
        print("ama: wrote %s (%d edges across %d atomic fields, %d "
              "allowlist entries)" %
              (baseline_path, len(edges), len({k[0] for k in edges}),
               len(allowlist)))
        return 0

    # --check (default)
    if baseline is None:
        print("ama: no-baseline: %s does not exist; run scripts/ama.py "
              "--update to create it" % baseline_path, file=sys.stderr)
        return 1
    problems += diff_against_baseline(edges, baseline)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print("ama: %d problem(s)" % len(problems), file=sys.stderr)
        return 1
    print("ama: baseline OK (%d edges across %d atomic fields)" %
          (len(edges), len({k[0] for k in edges})))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
