#!/usr/bin/env bash
# Canonical perf-trajectory run: the fixed benchmark configuration every
# BENCH_NNNN.json point is measured with, so points are comparable
# across PRs. Usage:
#
#   scripts/run_bench_point.sh NNNN [build-dir]
#
# Runs bench_ycsb_uniform and bench_ycsb_skew with pinned flags, then
# distills the --metrics-out rows into BENCH_NNNN.json at the repo root
# (commit it). Raw rows land in <build-dir>/bench-point/ and stay
# uncommitted. Machine load skews absolute numbers — prefer comparing
# points from the same class of machine, and read the trend
# (scripts/bench_trend.py) rather than any single point.
set -euo pipefail

id="${1:?usage: run_bench_point.sh NNNN [build-dir]}"
build="${2:-build}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo/$build/bench-point"
mkdir -p "$out"

common=(--seconds=2 --warmup=1 --seed=31)

"$repo/$build/bench/bench_ycsb_uniform" "${common[@]}" --clients=24 \
  --metrics-out="$out/ycsb_uniform.jsonl"
"$repo/$build/bench/bench_ycsb_skew" "${common[@]}" --clients=32 \
  --metrics-out="$out/ycsb_skew.jsonl"

python3 "$repo/scripts/bench_distill.py" \
  --out "$repo/BENCH_${id}.json" \
  "$out/ycsb_uniform.jsonl" "$out/ycsb_skew.jsonl"
python3 "$repo/scripts/bench_trend.py"
