#!/usr/bin/env python3
"""hpa.py - hot-path cost analyzer for the DynaMast tree.

Profiles the transaction critical path — everything reachable from a
``DYNAMAST_HOT_PATH``-annotated root — for per-operation costs that csa.py
(which only looks inside lock regions) cannot see: heap allocations,
by-value copies of wide types, string formatting, and tracked-lock
acquisitions.  The profile is committed as ``HPA_BASELINE.json`` and
ratcheted so the per-transaction cost of the system is monotonically
non-increasing unless a new edge is justified.

How it works
------------
The lexical C++ front end (blanking, scope reconstruction, declaration
model, receiver/call resolution, fixpoint propagation) is shared with
csa.py and lives in ``cpp_model.py``.  hpa layers on top:

1.  Roots are the functions annotated ``DYNAMAST_HOT_PATH`` (the
    DESIGN.md hot-path-root registry table documents them; dynamast-lint
    rule 7 keeps the table honest).
2.  Each non-exempt function body is scanned for cost operations (the
    vocabulary below).  Virtual calls through interfaces with no body
    (``SystemInterface::Execute``, ``WorkloadClient::Next`` ...) are
    resolved to every derived-class override so workload/driver paths do
    not escape the analysis.
3.  Ops propagate caller-ward to a fixpoint with minimal witness chains.
    A root never absorbs the profile of another root it calls (each
    root's costs are accounted once, under that root).
4.  Every (root, performing function, op) triple becomes an edge with
    the shortest root -> performer witness chain.

Operation vocabulary
--------------------
``alloc.new`` / ``alloc.make_unique`` / ``alloc.make_shared`` /
``alloc.malloc``       direct heap allocation.
``alloc.container.<m>``  container growth (`push_back`, `emplace_back`,
                       `emplace`, `insert`, `resize`, `reserve`,
                       `append`, ...).
``alloc.string.ctor``  explicit ``std::string(...)`` construction.
``fmt.to_string``      ``std::to_string`` formatting.
``fmt.concat``         string concatenation adjacent to a literal
                       (``"..." +``, ``+ "..."``, ``+= "..."``).
``copy.assign.<T>``    assignment/decl-init whose right side is a plain
                       lvalue of a wide type.
``copy.param.<T>``     a plain lvalue passed to a by-value wide
                       parameter without ``std::move``.
``copy.capture.<T>``   a lambda copy-capture of a wide local.
``copy.return.<T>``    returning a wide member field by value.
``lock:<class>``       acquisition of a tracked lock class.
``trace.span``         a ``trace::Span`` constructed on the path.

Wide types are the containers/strings the analyzer always tracks plus
the class names listed in the DESIGN.md hpa wide-type registry table
(``VersionVector``, ``LogRecord``, ...).  A copy of a type that is
*structurally* wide (transitively contains a container/string/wide
field) but missing from the registry fails the ``unannotated-copy``
rule, so wide types cannot hide from the ratchet by staying
unregistered.

The ratchet
-----------
``--check`` recomputes the profile and fails when an edge appears that
is not in ``HPA_BASELINE.json`` (naming the root, the witness chain, and
the op) unless a justified allowlist entry covers it; when an edge
disappeared (run ``--update`` to ratchet down); when an allowlist entry
is unjustified, names an unknown root, or is stale; or when an
unannotated structurally-wide copy is found on a hot path.  ``--update``
refuses to bake unjustified new edges and rewrites the baseline
deterministically (sorted keys, two-space indent).

Known limitations (deterministic under-approximations): range-for
by-value copies, implicit conversions, and copies hidden behind calls
(e.g. ``push_back(x)``'s element copy) are not modeled — the growth op
covers the container site; literal-to-string conversions at call sites
are not counted.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpp_model
from cpp_model import is_exempt, line_of, strip_root

BASELINE_NAME = "HPA_BASELINE.json"
ROOT_REGISTRY_BEGIN = "<!-- hot-path-root-registry:begin -->"
ROOT_REGISTRY_END = "<!-- hot-path-root-registry:end -->"
WIDE_REGISTRY_BEGIN = "<!-- hpa-wide-type-registry:begin -->"
WIDE_REGISTRY_END = "<!-- hpa-wide-type-registry:end -->"

# Containers (and strings) are always wide: copying one allocates.
WIDE_CONTAINERS = {
    "vector", "deque", "list", "map", "multimap", "set", "unordered_map",
    "unordered_set", "multiset", "queue", "priority_queue", "stack",
    "string", "basic_string",
}

# Ops already extracted by the shared front end, renamed into hpa's
# taxonomy.  builtin.sleep is csa's domain (blocking, not allocation).
SHARED_OP_MAP = {
    "builtin.alloc.new": "alloc.new",
    "builtin.alloc.make_unique": "alloc.make_unique",
    "builtin.alloc.make_shared": "alloc.make_shared",
    "builtin.alloc.malloc": "alloc.malloc",
    "builtin.str.to_string": "fmt.to_string",
    "expensive:trace::Span::record": "trace.span",
}

_GROWTH_RE = re.compile(
    r"(?:\.|->)\s*(push_back|emplace_back|emplace_hint|emplace|insert"
    r"|resize|reserve|append)\s*\(")
_STRING_CTOR_RE = re.compile(r"\bstd\s*::\s*string\s*(?:\w+\s*)?\(")
_CONCAT_RE = re.compile(r'"\s*\+|\+=?\s*"')
_LAMBDA_RE = re.compile(
    r"\[([^\[\]]*)\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?"
    r"(?:->\s*[\w:<>&*\s]+)?\{")
_ASSIGN_COPY_RE = re.compile(
    r"([A-Za-z_][\w.\[\]>-]*)\s*(?<![=!<>+\-*/%&|^])=(?!=)\s*"
    r"([A-Za-z_][\w.\[\]>-]*)\s*;")
_RETURN_MEMBER_RE = re.compile(r"\breturn\s+([A-Za-z_]\w*)\s*;")
_BARE_LVALUE_RE = re.compile(r"[A-Za-z_][\w.\[\]>-]*")


# ---------------------------------------------------------------------------
# Wide-type model


def parse_marked_registry(root, begin, end):
    """First backticked column of table rows between two markers."""
    design = os.path.join(root, "DESIGN.md")
    names = set()
    try:
        with open(design, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return names
    b = text.find(begin)
    e = text.find(end)
    if b < 0 or e < 0:
        return names
    for row in text[b:e].splitlines():
        m = re.match(r"\|\s*`([^`]+)`\s*\|", row)
        if m:
            names.add(m.group(1))
    return names


def classify_wide(raw, registry, allow_ref=False):
    """(wide-kind, candidate) for a raw declared type.

    wide-kind is the op suffix ('vector', 'string', 'VersionVector', ...)
    when the type is tracked; candidate is the simple class name to test
    for structural wideness when it is not.  References/pointers are not
    copies unless allow_ref (lambda copy-captures copy the referent).
    """
    if raw is None:
        return (None, None)
    if not allow_ref and ("&" in raw or "*" in raw):
        return (None, None)
    t = raw.replace("&", " ").replace("*", " ")
    t = re.sub(r"\b(?:const|constexpr|static|mutable|volatile|typename)\b",
               " ", t).strip()
    m = re.match(r"(?:std\s*::\s*)?(\w+)\s*<", t)
    if m and m.group(1) in WIDE_CONTAINERS:
        kind = m.group(1)
        return ("string" if kind == "basic_string" else kind, None)
    t = re.sub(r"<[^<>]*>", "", t)
    parts = [p for p in re.split(r"\s|::", t) if p]
    if not parts:
        return (None, None)
    simple = parts[-1]
    if simple == "string":
        return ("string", None)
    if simple in registry:
        return (simple, None)
    if re.fullmatch(r"[A-Z]\w*", simple):
        return (None, simple)
    return (None, None)


def collect_raw_fields(project):
    """(cls, field) -> raw declared type text, plus cls -> [(fld, raw)]."""
    raw_fields = {}
    by_class = {}
    for rel in sorted(project.files):
        blanked = project.blanked[rel]
        for cls in (s for s in project.scopes[rel] if s.kind == "class"):
            for start, stmt in cpp_model.iter_statements(blanked, cls):
                stmt = re.sub(r"\b(?:public|private|protected)\s*:", " ",
                              stmt)
                stmt = re.sub(r"\bDYNAMAST_\w+\s*\([^()]*\)", " ", stmt)
                if "(" in stmt or not stmt.strip():
                    continue
                dm = cpp_model._FIELD_DECL_RE.match(stmt.strip())
                if not dm:
                    continue
                raw = re.sub(r"\s+", " ", dm.group(1)).strip()
                key = (cls.name, dm.group(2))
                if key not in raw_fields:
                    raw_fields[key] = raw
                    by_class.setdefault(cls.name, []).append(
                        (dm.group(2), raw))
    return raw_fields, by_class


def structurally_wide(cls, by_class, registry, _seen=None):
    """(field, raw) making `cls` wide, or None.  Transitive over fields."""
    if _seen is None:
        _seen = set()
    if cls in _seen or cls not in by_class:
        return None
    _seen.add(cls)
    for fld, raw in by_class[cls]:
        if "*" in raw or "&" in raw:
            continue
        kind, cand = classify_wide(raw, registry)
        if kind:
            return (fld, raw)
        if cand and structurally_wide(cand, by_class, registry, _seen):
            return (fld, raw)
    return None


# ---------------------------------------------------------------------------
# Hot-op extraction


def _balanced_to_close(text, start):
    """Index of the ')' matching the '(' at start-1 (start is after it)."""
    depth = 1
    i = start
    while i < len(text):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def _split_args(text):
    args = []
    depth = 0
    cur = []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if "".join(cur).strip() or args:
        args.append("".join(cur))
    return args


def callee_params(project, key, registry, cache):
    """Per-position (wide-kind, candidate) for by-value params, else None."""
    if key in cache:
        return cache[key]
    info = project.funcs[key]
    out = []
    if info.bodies:
        rel, scope = info.bodies[0]
        header = scope.header
        last = None
        for m in re.finditer(r"\b%s\s*\(" % re.escape(info.name), header):
            last = m
        if last is not None:
            close = _balanced_to_close(header, last.end())
            if close > 0:
                for param in _split_args(header[last.end():close]):
                    param = param.split("=", 1)[0].strip()
                    pm = re.match(r"^(.*?)\s*\b([A-Za-z_]\w*)$", param,
                                  re.S)
                    if pm is None or "&" in pm.group(1) \
                            or "*" in pm.group(1):
                        out.append(None)
                        continue
                    out.append(classify_wide(pm.group(1), registry))
    cache[key] = out
    return out


# Like cpp_model._LOCAL_DECL_TMPL but the trailing &/* sigil stays inside
# the captured group: hpa must tell `SiteManager* site` (pointer local,
# cheap to copy) apart from `SiteManager site` (a by-value disaster).
_RAW_DECL_TMPL = (
    r"\b((?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[\w:\s,*&<>]*>)?\s*[&*]?)\s+"
    r"%s\s*(?=[=;({:,)\[])")


def resolve_raw_local(body_text, name):
    """Raw declared type (sigil included) of a local; latest decl wins."""
    best = None
    for m in re.finditer(_RAW_DECL_TMPL % re.escape(name), body_text):
        t = m.group(1).strip()
        if t:
            best = t
    return best


def raw_type_of_chain(project, raw_fields, chain, context_text, cls_name):
    """Raw declared type of a bare lvalue chain like `txn.profile.keys`."""
    parts = [re.sub(r"\[[^\]]*\]", "", p).strip()
             for p in re.split(r"->|\.", chain) if p.strip()]
    if not parts:
        return None
    if len(parts) == 1:
        raw = resolve_raw_local(context_text, parts[0])
        if raw is None:
            raw = raw_fields.get((cls_name, parts[0]))
        return raw
    prefix = ".".join(parts[:-1])
    recv = cpp_model.resolve_receiver_chain(project, prefix, context_text,
                                            cls_name)
    if recv is None:
        return None
    return raw_fields.get((recv, parts[-1]))


def _macro_spans(blanked):
    """Spans of DYNAMAST_*(...) macro invocations (file offsets).

    Work inside invariant/annotation macro arguments is not a hot-path
    cost: DYNAMAST_INVARIANT compiles to nothing unless invariants are
    enabled, and even then its message is only built on failure.
    """
    spans = []
    for m in re.finditer(r"\bDYNAMAST_\w+\s*\(", blanked):
        close = _balanced_to_close(blanked, m.end())
        if close > 0:
            spans.append((m.start(), close + 1))
    return spans


def compute_facts_filtered(project):
    """cpp_model.compute_facts minus ops/calls inside DYNAMAST macros.

    Returns (facts, spans-by-file) so op extraction can reuse the spans.
    """
    spans_cache = {}
    facts = {}
    for key in sorted(project.funcs):
        info = project.funcs[key]
        merged = cpp_model.BodyFacts()
        for rel, scope in info.bodies:
            if is_exempt(rel):
                continue
            if rel not in spans_cache:
                spans_cache[rel] = _macro_spans(project.blanked[rel])
            spans = spans_cache[rel]

            def outside(off):
                return not any(s <= off < e for s, e in spans)
            bf = cpp_model.extract_body_facts(project, rel, scope,
                                              info.cls)
            merged.ops.extend(o for o in bf.ops if outside(o[0]))
            merged.calls.extend(c for c in bf.calls if outside(c[0]))
            merged.lockers.extend((o, c, e, rel, scope)
                                  for (o, c, e) in bf.lockers)
        facts[key] = merged
    return facts, spans_cache


def extract_hot_ops(project, rel, fn_scope, cls_name, registry, raw_fields,
                    param_cache, spans=()):
    """Returns (ops, candidates): hpa cost ops performed directly by the
    body, plus (offset, type) copy candidates for the unannotated rule."""
    blanked = project.blanked[rel]
    body = blanked[fn_scope.open + 1:fn_scope.close]
    base = fn_scope.open + 1
    if spans:
        buf = list(body)
        for s, e in spans:
            for i in range(max(s - base, 0), min(e - base, len(buf))):
                if buf[i] != "\n":
                    buf[i] = " "
        body = "".join(buf)
    context_text = fn_scope.header + body
    ops = []
    candidates = []

    def copy_op(offset, mech, raw, allow_ref=False):
        kind, cand = classify_wide(raw, registry, allow_ref=allow_ref)
        if kind:
            ops.append((offset, "copy.%s.%s" % (mech, kind)))
        elif cand:
            candidates.append((offset, cand))

    for m in _GROWTH_RE.finditer(body):
        ops.append((base + m.start(), "alloc.container." + m.group(1)))
    for m in _STRING_CTOR_RE.finditer(body):
        close = _balanced_to_close(body, m.end())
        if close > 0 and body[m.end():close].strip():
            ops.append((base + m.start(), "alloc.string.ctor"))
    for m in _CONCAT_RE.finditer(body):
        ops.append((base + m.start(), "fmt.concat"))
    for m in _LAMBDA_RE.finditer(body):
        for item in m.group(1).split(","):
            item = item.strip()
            if (not item or item.startswith("&") or "=" in item
                    or item in ("this", "*this")):
                continue
            if not re.fullmatch(r"\w+", item):
                continue
            raw = resolve_raw_local(context_text, item)
            if raw is not None and "*" in raw:
                continue    # pointer captures copy only the pointer
            copy_op(base + m.start(), "capture", raw, allow_ref=True)
    for m in _ASSIGN_COPY_RE.finditer(body):
        prev = body[:m.start()].rstrip()
        if prev.endswith("&") or prev.endswith("*"):
            continue            # reference binding, not a copy
        raw = raw_type_of_chain(project, raw_fields, m.group(2),
                                context_text, cls_name)
        copy_op(base + m.start(), "assign", raw)
    for m in _RETURN_MEMBER_RE.finditer(body):
        raw = raw_fields.get((cls_name, m.group(1)))
        if raw is None:
            continue
        # Only a by-value return copies; check the declared return type.
        name_m = None
        for fm in re.finditer(r"[\w~]+\s*\($", fn_scope.header.rstrip()):
            name_m = fm
        ret_raw = fn_scope.header[:name_m.start()] if name_m else \
            fn_scope.header
        if "&" in ret_raw or "*" in ret_raw:
            continue
        copy_op(base + m.start(), "return", raw)
    for m in cpp_model._CALL_RE.finditer(body):
        name_path = re.sub(r"\s", "", m.group(2))
        simple = name_path.rsplit("::", 1)[-1]
        if (simple in cpp_model.CONTROL_KEYWORDS
                or simple in cpp_model.LOCKER_TYPES
                or simple.startswith("DYNAMAST")
                or re.fullmatch(r"[A-Z][A-Z0-9_]*", simple)
                or simple in cpp_model.BUILTIN_CALLS):
            continue
        key = cpp_model._resolve_call(project, m.group(1).strip(),
                                      name_path, simple, context_text,
                                      cls_name)
        if key is None:
            continue
        params = callee_params(project, key, registry, param_cache)
        if not params or not any(p and (p[0] or p[1]) for p in params):
            continue
        close = _balanced_to_close(body, m.end())
        if close < 0:
            continue
        args = _split_args(body[m.end():close])
        for i, arg in enumerate(args):
            if i >= len(params) or params[i] is None:
                continue
            kind, cand = params[i]
            if not kind and not cand:
                continue
            a = arg.strip()
            if not _BARE_LVALUE_RE.fullmatch(a):
                continue        # calls, moves, temporaries, literals
            offset = base + m.start()
            if kind:
                ops.append((offset, "copy.param." + kind))
            else:
                candidates.append((offset, cand))
    ops.sort()
    candidates.sort()
    return ops, candidates


# ---------------------------------------------------------------------------
# Roots, virtual dispatch, propagation


def discover_roots(project):
    return sorted(key for key, info in project.funcs.items()
                  if info.hot_path)


def build_derived_map(project):
    derived = {}
    for rel in sorted(project.scopes):
        for s in project.scopes[rel]:
            if s.kind != "class":
                continue
            m = re.search(r"(?:class|struct)\s+\w+\s*(?:final\s*)?"
                          r":\s*([^;{]*)$", s.header)
            if m is None:
                continue
            for base in m.group(1).split(","):
                base = re.sub(r"\b(?:public|protected|private|virtual)\b",
                              " ", base)
                base = re.sub(r"<[^<>]*>", "", base)
                base = base.strip().rsplit("::", 1)[-1].strip()
                if base and base != s.name:
                    derived.setdefault(base, set()).add(s.name)
    return derived


def _derived_closure(derived, cls):
    out = set()
    stack = [cls]
    while stack:
        for d in derived.get(stack.pop(), ()):
            if d not in out:
                out.add(d)
                stack.append(d)
    return out


def augment_virtual_calls(project, facts, derived):
    """Adds derived-class overrides for calls to body-less interfaces."""
    for key in sorted(facts):
        extra = []
        for offset, callee in facts[key].calls:
            cls, name = callee
            if project.funcs[callee].bodies or not cls:
                continue
            for d in sorted(_derived_closure(derived, cls)):
                dk = (d, name)
                if dk in project.funcs and project.funcs[dk].bodies:
                    extra.append((offset, dk))
        if extra:
            facts[key].calls.extend(extra)
            facts[key].calls.sort()


def compute_hot_ops(project, registry, raw_fields, spans_by_rel):
    """(cls,name) -> [(offset, op)], plus unannotated-copy candidates."""
    param_cache = {}
    hot_ops = {}
    candidates = {}        # key -> [(rel, line, type)]
    for key in sorted(project.funcs):
        info = project.funcs[key]
        merged = []
        cands = []
        for rel, scope in info.bodies:
            if is_exempt(rel):
                continue
            ops, cand = extract_hot_ops(project, rel, scope, info.cls,
                                        registry, raw_fields, param_cache,
                                        spans_by_rel.get(rel, ()))
            merged.extend(ops)
            cands.extend((rel, line_of(project.blanked[rel], off), t)
                         for off, t in cand)
        hot_ops[key] = merged
        candidates[key] = cands
    return hot_ops, candidates


def hot_reachable(project, facts, roots):
    """All functions reachable from any root (each root's own subtree)."""
    root_set = set(roots)
    reachable = set(roots)
    stack = list(roots)
    while stack:
        key = stack.pop()
        for _, callee in facts[key].calls:
            if callee in root_set or callee in reachable:
                continue
            reachable.add(callee)
            stack.append(callee)
    return reachable


def collect_root_edges(project, ops_map, roots):
    """{(root, function, op): chain} from performer-tagged op strings."""
    edges = {}
    for rkey in roots:
        rname = strip_root(project.funcs[rkey].qual)
        for op_str, chain in sorted(ops_map[rkey].items()):
            op, performer = op_str.rsplit("@", 1)
            edges[(rname, performer, op)] = list(chain)
    return edges


def unannotated_copy_violations(project, candidates, reachable, by_class,
                                registry):
    out = []
    seen = set()
    for key in sorted(reachable):
        info = project.funcs[key]
        for rel, line, type_name in candidates.get(key, ()):
            wide = structurally_wide(type_name, by_class, registry)
            if wide is None:
                continue
            fld, raw = wide
            item = (rel, line, type_name)
            if item in seen:
                continue
            seen.add(item)
            out.append(
                "hpa: unannotated-copy: %s:%d: %s copies `%s` by value on "
                "a hot path; the type is structurally wide (field `%s` is "
                "`%s`) but is not in the DESIGN.md hpa wide-type registry "
                "— add it there (and an allowlist justification if the "
                "copy must stay) or pass/move a reference" %
                (rel, line, strip_root(info.qual), type_name, fld, raw))
    return sorted(out)


# ---------------------------------------------------------------------------
# Baseline and allowlist


def edges_to_json(edges):
    out = []
    for (root, function, op) in sorted(edges):
        out.append({
            "root": root,
            "function": function,
            "op": op,
            "chain": edges[(root, function, op)],
        })
    return out


def profile_document(edges, allowlist):
    return {
        "version": 1,
        "edges": edges_to_json(edges),
        "allowlist": allowlist,
    }


def dump_json(doc):
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def load_baseline(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError:
        return None
    except ValueError as e:
        raise SystemExit("hpa: %s is not valid JSON: %s" % (path, e))


def allowlist_matches(entry, root, function, op):
    if entry.get("op") != op:
        return False
    r = entry.get("root")
    if r is not None and r != root:
        return False
    fn = entry.get("function")
    return fn is None or fn == function


def validate_allowlist(allowlist, root_names, edges):
    problems = []
    for i, entry in enumerate(allowlist):
        where = "allowlist[%d] (%s / %s)" % (
            i, entry.get("root") or "*", entry.get("op", "?"))
        if not str(entry.get("justification", "")).strip():
            problems.append("hpa: allowlist: %s has no justification" %
                            where)
        r = entry.get("root")
        if r is not None and r not in root_names:
            problems.append(
                "hpa: allowlist: %s names root %r which is not a "
                "DYNAMAST_HOT_PATH root" % (where, r))
        if not any(allowlist_matches(entry, root, fn, op)
                   for (root, fn, op) in edges):
            problems.append(
                "hpa: allowlist: %s matches no current edge (stale entry: "
                "the hot path no longer performs this operation; delete "
                "the entry)" % where)
    return problems


def format_edge(root, function, op, chain):
    path = list(chain)
    if not path or path[-1] != function:
        path = path + [function]
    return "%s: %s -> %s" % (root, " -> ".join(path), op)


def diff_against_baseline(edges, baseline):
    base_edges = {(e["root"], e["function"], e["op"])
                  for e in baseline.get("edges", [])}
    allowlist = baseline.get("allowlist", [])
    new = sorted(k for k in edges if k not in base_edges)
    gone = sorted(k for k in base_edges if k not in edges)
    problems = []
    for (root, function, op) in new:
        covered = any(allowlist_matches(e, root, function, op)
                      for e in allowlist)
        chain = edges[(root, function, op)]
        if covered:
            problems.append(
                "hpa: new-edge: %s\n  allowlisted; run scripts/hpa.py "
                "--update to record it in %s" %
                (format_edge(root, function, op, chain), BASELINE_NAME))
        else:
            problems.append(
                "hpa: new-edge: %s\n  new allocation/copy/formatting cost "
                "on the `%s` hot path. Hoist or remove it, or add an "
                "allowlist entry with a justification to %s and run "
                "scripts/hpa.py --update" %
                (format_edge(root, function, op, chain), root,
                 BASELINE_NAME))
    for (root, function, op) in gone:
        problems.append(
            "hpa: missing-edge: %s: %s -> %s\n  the hot path got cheaper "
            "(good); run scripts/hpa.py --update to ratchet the baseline "
            "down" % (root, function, op))
    return problems


# ---------------------------------------------------------------------------
# CLI


def analyze(root):
    project = cpp_model.load_project(root, tool="hpa")
    wide_registry = parse_marked_registry(root, WIDE_REGISTRY_BEGIN,
                                          WIDE_REGISTRY_END)
    raw_fields, by_class = collect_raw_fields(project)
    facts, spans_by_rel = compute_facts_filtered(project)
    derived = build_derived_map(project)
    augment_virtual_calls(project, facts, derived)
    hot_ops, candidates = compute_hot_ops(project, wide_registry,
                                          raw_fields, spans_by_rel)
    roots = discover_roots(project)

    def seeds(prj, key, merged):
        me = strip_root(prj.funcs[key].qual)
        out = ["%s@%s" % (op, me) for _, op in hot_ops[key]]
        for _, op in merged.ops:
            mapped = SHARED_OP_MAP.get(op)
            if mapped is not None:
                out.append("%s@%s" % (mapped, me))
        out += ["lock:%s@%s" % (entry[1], me) for entry in merged.lockers]
        return out

    ops_map = cpp_model.propagate(project, facts, seeds,
                                  barrier=frozenset(roots))
    edges = collect_root_edges(project, ops_map, roots)
    reachable = hot_reachable(project, facts, roots)
    violations = unannotated_copy_violations(project, candidates,
                                             reachable, by_class,
                                             wide_registry)
    root_names = [strip_root(project.funcs[k].qual) for k in roots]
    return edges, violations, root_names


def main(argv):
    parser = argparse.ArgumentParser(
        prog="hpa.py",
        description="Hot-path cost analyzer (see module docstring).")
    parser.add_argument("--root", default=None,
                        help="repository root (default: script's parent)")
    parser.add_argument("--baseline", default=None,
                        help="baseline path (default: <root>/%s)" %
                        BASELINE_NAME)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="verify the profile against the baseline "
                      "(default mode)")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the baseline (refuses unjustified "
                      "new edges)")
    mode.add_argument("--dump", action="store_true",
                      help="print the current profile JSON to stdout")
    mode.add_argument("--list-roots", action="store_true",
                      help="print the discovered DYNAMAST_HOT_PATH roots")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print("hpa: no src/ under %s" % root, file=sys.stderr)
        return 2
    baseline_path = args.baseline or os.path.join(root, BASELINE_NAME)

    edges, violations, root_names = analyze(root)
    baseline = load_baseline(baseline_path)
    allowlist = (baseline or {}).get("allowlist", [])

    if args.list_roots:
        for name in sorted(root_names):
            print(name)
        return 0

    if args.dump:
        sys.stdout.write(dump_json(profile_document(edges, allowlist)))
        return 0

    problems = list(violations)
    problems += validate_allowlist(allowlist, set(root_names), edges)

    if args.update:
        new_unjustified = []
        base_edges = {(e["root"], e["function"], e["op"])
                      for e in (baseline or {}).get("edges", [])}
        if baseline is not None:
            for key in sorted(edges):
                if key in base_edges:
                    continue
                r, fn, op = key
                if not any(allowlist_matches(e, r, fn, op)
                           for e in allowlist):
                    new_unjustified.append(
                        "hpa: new-edge: %s\n  refusing to bake an "
                        "unjustified edge into the baseline; add an "
                        "allowlist entry first" %
                        format_edge(r, fn, op, edges[key]))
        problems += new_unjustified
        if problems:
            print("\n".join(problems), file=sys.stderr)
            return 1
        with open(baseline_path, "w", encoding="utf-8") as f:
            f.write(dump_json(profile_document(edges, allowlist)))
        print("hpa: wrote %s (%d edges, %d allowlist entries)" %
              (baseline_path, len(edges), len(allowlist)))
        return 0

    # --check (default)
    if baseline is None:
        problems.append(
            "hpa: no-baseline: %s does not exist; run scripts/hpa.py "
            "--update to create it" % baseline_path)
        print("\n".join(problems), file=sys.stderr)
        return 1
    problems += diff_against_baseline(edges, baseline)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print("hpa: %d problem(s)" % len(problems), file=sys.stderr)
        return 1
    print("hpa: baseline OK (%d edges across %d roots)" %
          (len(edges), len({k[0] for k in edges})))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
