#!/usr/bin/env python3
"""Distills --metrics-out rows into a committed BENCH_NNNN.json point.

The perf trajectory is a sequence of BENCH_*.json files at the repo
root, one per PR that touched performance. Each holds the distilled
(throughput, p99) per (bench, point, system) from a canonical run of
the two YCSB benchmarks (see scripts/run_bench_point.sh for the exact
flags). scripts/bench_trend.py compares the newest point against its
predecessor in the check.sh `bench-trend` stage.

Usage:
  bench_distill.py --out BENCH_0007.json rows1.jsonl [rows2.jsonl ...]

Each input file is the newline-delimited JSON a bench binary appends
via --metrics-out. Only identity, throughput and latency percentiles
survive distillation — full rows stay uncommitted (they embed a
complete metrics-registry snapshot and are megabytes across runs).
"""

import argparse
import json
import sys


def distill_row(row):
    report = row.get("report", {})
    latency = report.get("latency_us", {})
    out = {
        "bench": row.get("bench", "?"),
        "point": row.get("point", ""),
        "system": row.get("system", "?"),
        "committed": report.get("committed", 0),
        "errors": report.get("errors", 0),
        "throughput": round(float(report.get("throughput", 0.0)), 1),
    }
    if latency:
        out["p50_us"] = round(float(latency.get("p50", 0.0)), 1)
        out["p99_us"] = round(float(latency.get("p99", 0.0)), 1)
    return out


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_distill.py",
        description="Distill --metrics-out rows into a BENCH_*.json "
        "perf-trajectory point.")
    parser.add_argument("--out", required=True,
                        help="output path (BENCH_NNNN.json)")
    parser.add_argument("rows", nargs="+",
                        help="--metrics-out files (JSON lines)")
    args = parser.parse_args(argv)

    results = []
    config = None
    for path in args.rows:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                results.append(distill_row(row))
                if config is None:
                    config = row.get("config")
    if not results:
        print("bench_distill: no rows in input", file=sys.stderr)
        return 1
    results.sort(key=lambda r: (r["bench"], r["point"], r["system"]))
    doc = {"version": 1, "config": config, "results": results}
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print("bench_distill: wrote %s (%d results)" % (args.out, len(results)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
