#!/usr/bin/env bash
# The full correctness gate (see DESIGN.md, "Correctness tooling"):
#
#   1. format check           (.clang-format via scripts/format-check.sh)
#   2. default build + ctest  (tier1 + tier2, uninstrumented)
#   3. clang-tidy             (.clang-tidy over src/, compile_commands.json)
#   4. ASan+UBSan build + ctest   (preset asan-ubsan: sanitizers,
#                                  DYNAMAST_INVARIANTS, DYNAMAST_LOCK_DEBUG)
#   5. TSan build + ctest         (preset tsan: same checkers under
#                                  ThreadSanitizer)
#
# Steps needing tools the machine lacks (clang-format / clang-tidy) are
# skipped with a warning rather than failed, so the gate is still useful
# on a bare-gcc box. Environment knobs:
#   JOBS=<n>        parallel build jobs (default: nproc)
#   SKIP_TSAN=1     skip step 5 (TSan doubles the wall time)
#   SKIP_ASAN=1     skip step 4
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
failures=0

step() { echo; echo "==== check.sh: $* ===="; }

# 1. Formatting -------------------------------------------------------------
step "format check"
if ! scripts/format-check.sh; then
  echo "check.sh: FORMAT CHECK FAILED" >&2
  failures=$((failures + 1))
fi

# 2. Default build + tests --------------------------------------------------
step "default build"
cmake --preset default
cmake --build build -j "$JOBS"
step "default ctest (tier1 + tier2)"
if ! ctest --preset default; then
  echo "check.sh: DEFAULT TESTS FAILED" >&2
  failures=$((failures + 1))
fi

# 3. clang-tidy -------------------------------------------------------------
step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t tidy_files < <(git ls-files 'src/*.cc')
  if ! clang-tidy -p build --quiet "${tidy_files[@]}"; then
    echo "check.sh: CLANG-TIDY FAILED" >&2
    failures=$((failures + 1))
  fi
else
  echo "check.sh: WARNING: clang-tidy not found; skipping lint step" >&2
fi

# 4. ASan + UBSan -----------------------------------------------------------
if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  step "asan-ubsan build (tests only)"
  cmake --preset asan-ubsan
  cmake --build build-asan --target dynamast_tests -j "$JOBS"
  step "asan-ubsan ctest"
  if ! ctest --preset asan-ubsan; then
    echo "check.sh: ASAN/UBSAN TESTS FAILED" >&2
    failures=$((failures + 1))
  fi
else
  echo "check.sh: skipping asan-ubsan (SKIP_ASAN=1)" >&2
fi

# 5. TSan -------------------------------------------------------------------
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  step "tsan build (tests only)"
  cmake --preset tsan
  cmake --build build-tsan --target dynamast_tests -j "$JOBS"
  step "tsan ctest"
  if ! ctest --preset tsan; then
    echo "check.sh: TSAN TESTS FAILED" >&2
    failures=$((failures + 1))
  fi
else
  echo "check.sh: skipping tsan (SKIP_TSAN=1)" >&2
fi

# ---------------------------------------------------------------------------
echo
if [[ $failures -gt 0 ]]; then
  echo "check.sh: FAILED ($failures step(s) failed)" >&2
  exit 1
fi
echo "check.sh: all steps passed"
