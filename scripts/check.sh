#!/usr/bin/env bash
# The full correctness gate (see DESIGN.md, "Correctness tooling" and
# "Schedule exploration & history auditing"):
#
#   format       .clang-format via scripts/format-check.sh
#   build        default build (everything: tests, examples, benches)
#   tier1/tier2  default ctest
#   lint-project scripts/dynamast-lint.py project-invariant linter
#                (lock-class registry, sched-op pairing, history
#                commit/abort pairing, metric naming, tsa-escape and
#                CSA-allowlist justifications, hot-path-root registry,
#                atomic-field registry)
#   csa          scripts/csa.py critical-section cost analyzer: fixture
#                suite, the ratchet against CSA_BASELINE.json, and a
#                double-dump reproducibility check; on failure the
#                current profile is left in build/csa/ for diffing
#   hpa          scripts/hpa.py hot-path cost analyzer: fixture suite,
#                the ratchet against HPA_BASELINE.json, and a
#                double-dump reproducibility check; on failure the
#                current profile is left in build/hpa/ for diffing
#   ama          scripts/ama.py atomics & memory-order analyzer: fixture
#                suite, the ratchet against AMA_BASELINE.json, and a
#                double-dump reproducibility check; on failure the
#                current profile is left in build/ama/ for diffing
#   bench-trend  ratcheted perf gate: newest committed BENCH_*.json
#                trajectory point vs its predecessor; fails on a
#                throughput drop >30% or p99 rise >75% per series
#                unless waived (with a reason) in BENCH_WAIVERS.json
#   tsa          clang-tsa preset: src/ under -Werror=thread-safety,
#                plus the tests/tsa_compile_fail negative-compile suite
#   clang-tidy   .clang-tidy over src/ (compile_commands.json)
#   asan-ubsan   sanitizer preset build + ctest (invariants, lock checks)
#   tsan         ThreadSanitizer preset build + ctest
#   sched-fuzz   schedule-exploration preset: sync-point fuzzing across
#                $FUZZ_SEEDS seeds per test, histories audited by
#                tools/si_checker (tier2 schedule_explore_test)
#   dpor         short-budget record/replay + partial-order reduction
#                gate: two replays of a recorded run must agree on the
#                history hash for every system, and the DPOR explorer
#                must prune at least one equivalent interleaving
#                (engine-level dpor_test plus the stock-workload suites)
#   break-si     deliberately broken grant wait; proves the auditor
#                detects the anomaly class (BreakSiProofTest) and that
#                the DPOR explorer finds the violation in fewer executed
#                schedules than random search, with a minimized
#                deterministically-replaying reproducer (BreakSiDporTest)
#   observability  short bench run with --metrics-out/--trace-out/
#                --history-out; jq-validates the JSON schemas (remaster
#                counts, refresh-delay histogram, routing-explain factor
#                sums, correlated trace spans) and reconciles metrics
#                against the history via si_checker --metrics
#
# Every stage runs even if an earlier one failed; the summary table at the
# end shows PASS/FAIL/SKIP per stage and the exit code propagates any
# failure. Stages needing tools the machine lacks (clang-format /
# clang-tidy / clang++ / python3) are SKIPped rather than failed, so the
# gate is still useful on a bare-gcc box.
#
# Environment knobs:
#   JOBS=<n>         parallel build jobs (default: nproc)
#   SKIP_ASAN=1      skip the asan-ubsan stage
#   SKIP_TSAN=1      skip the tsan stage (TSan doubles the wall time)
#   SKIP_OBS=1       skip the observability stage
#   OBS_OUT=<dir>    where the observability stage writes its artifacts
#                    (default: build/observability; CI uploads this)
#   SKIP_FUZZ=1      skip the sched-fuzz, dpor, and break-si stages
#   FUZZ_SEEDS=<n>   seeds per fuzzed test (default 5; CI weekly uses 50)
#   DPOR_EXECUTIONS=<n>  DPOR schedule budget (default 2; CI weekly uses more)
#   DYNAMAST_SCHED_SEED=<s>   replay one failing schedule seed exactly
#   DYNAMAST_SCHED_TRACE=<f>  replay one persisted decision-stream trace
set -uo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
FUZZ_SEEDS="${FUZZ_SEEDS:-5}"
DPOR_EXECUTIONS="${DPOR_EXECUTIONS:-2}"

stages=()
results=()
notes=()

record() {  # record <stage> <PASS|FAIL|SKIP> [note]
  stages+=("$1")
  results+=("$2")
  notes+=("${3:-}")
}

step() { echo; echo "==== check.sh: $* ===="; }

run_stage() {  # run_stage <name> <cmd...>
  local name="$1"
  shift
  step "$name"
  if "$@"; then
    record "$name" PASS
  else
    record "$name" FAIL
  fi
}

# 1. Formatting -------------------------------------------------------------
step "format"
if ! command -v clang-format >/dev/null 2>&1; then
  echo "check.sh: clang-format not found; skipping" >&2
  record format SKIP "clang-format not installed"
elif scripts/format-check.sh; then
  record format PASS
else
  record format FAIL
fi

# 2. Default build + tests --------------------------------------------------
step "build (default)"
if cmake --preset default && cmake --build build -j "$JOBS"; then
  record build PASS
  run_stage "tier1+tier2" ctest --preset default
else
  record build FAIL
  record "tier1+tier2" SKIP "build failed"
fi

# 3. Observability surface --------------------------------------------------
# A short real bench run must produce schema-valid, self-consistent
# telemetry: nonzero remaster counts, a populated refresh-delay histogram,
# per-factor routing-explain sums, a Chrome trace whose route spans
# correlate with execute/commit spans, and metrics that reconcile exactly
# with the run's history (si_checker --metrics).
observability_stage() {
  local out="${OBS_OUT:-build/observability}"
  mkdir -p "$out"
  local m="$out/metrics.json" t="$out/trace.json" h="$out/history.txt"
  rm -f "$m" "$t" "$h"
  if ! ./build/bench/bench_ycsb_skew --seconds=0.5 --warmup=0.3 --clients=8 \
       --scale=0.1 --systems=dynamast \
       --metrics-out="$m" --trace-out="$t" --history-out="$h"; then
    echo "check.sh: observability bench run failed" >&2
    return 1
  fi
  # Metrics row schema + the signals the dashboards need.
  jq -e '
    .system == "dynamast" and
    (.report.committed > 0) and
    ([.metrics.metrics[] | select(.name == "selector_remaster_total")
       | .series[].value] | add > 0) and
    ([.metrics.metrics[] | select(.name == "site_refresh_delay_us")
       | .series[].count] | add > 0) and
    ([.metrics.metrics[] | select(.name == "routing_explain_factor_sum")
       | .series[].labels.factor] | sort
       == ["balance", "delay", "inter", "intra"])
  ' "$m" > /dev/null || {
    echo "check.sh: metrics JSON failed schema validation" >&2
    return 1
  }
  # Trace schema: a remastered transaction's route span must correlate
  # (via the txn arg) with execute and commit spans.
  jq -e '
    ([.traceEvents[] | select(.name == "route" and .args.remastered == "1")
       | .args.txn][0]) as $txn
    | ($txn != null) and
      ([.traceEvents[] | select(.args.txn == $txn) | .name]
        | (contains(["execute"]) and contains(["commit"])))
  ' "$t" > /dev/null || {
    echo "check.sh: trace JSON lacks a correlated remastered txn" >&2
    return 1
  }
  # Cross-plane reconciliation, through the CLI.
  ./build/src/tools/si_checker --system=dynamast --metrics="$m" "$h"
}

if [[ "${SKIP_OBS:-0}" == "1" ]]; then
  record observability SKIP "SKIP_OBS=1"
elif ! command -v jq >/dev/null 2>&1; then
  record observability SKIP "jq not installed"
elif [[ ! -x build/bench/bench_ycsb_skew ]]; then
  record observability SKIP "build failed"
else
  step "observability"
  if observability_stage; then
    record observability PASS
  else
    record observability FAIL
  fi
fi

# 4. Project-invariant linter ----------------------------------------------
step "lint-project"
if command -v python3 >/dev/null 2>&1; then
  if python3 scripts/dynamast-lint.py; then
    record lint-project PASS
  else
    record lint-project FAIL
  fi
else
  echo "check.sh: python3 not found; skipping" >&2
  record lint-project SKIP "python3 not installed"
fi

# 5. Critical-section cost analyzer -----------------------------------------
# Fixture suite, then the ratchet: the current profile must match the
# committed CSA_BASELINE.json, and two dumps must be byte-identical. On a
# ratchet failure the current profile lands in build/csa/ so CI can upload
# it next to the baseline for diffing.
csa_stage() {
  local out="build/csa"
  mkdir -p "$out"
  python3 tests/csa_test/run_csa_test.py || return 1
  python3 scripts/csa.py --check || {
    python3 scripts/csa.py --dump > "$out/profile.json" 2>/dev/null
    echo "check.sh: csa ratchet failed; current profile in $out/profile.json" >&2
    return 1
  }
  python3 scripts/csa.py --dump > "$out/profile.json"
  python3 scripts/csa.py --dump > "$out/profile.2.json"
  if ! cmp -s "$out/profile.json" "$out/profile.2.json"; then
    echo "check.sh: csa profile dump is not reproducible" >&2
    return 1
  fi
  rm -f "$out/profile.2.json"
}

step "csa"
if command -v python3 >/dev/null 2>&1; then
  if csa_stage; then
    record csa PASS
  else
    record csa FAIL
  fi
else
  echo "check.sh: python3 not found; skipping" >&2
  record csa SKIP "python3 not installed"
fi

# 5b. Hot-path cost analyzer ------------------------------------------------
# Same shape as csa: fixture suite, ratchet against HPA_BASELINE.json,
# double-dump reproducibility. On a ratchet failure the current profile
# lands in build/hpa/ for diffing against the committed baseline.
hpa_stage() {
  local out="build/hpa"
  mkdir -p "$out"
  python3 tests/hpa_test/run_hpa_test.py || return 1
  python3 scripts/hpa.py --check || {
    python3 scripts/hpa.py --dump > "$out/profile.json" 2>/dev/null
    echo "check.sh: hpa ratchet failed; current profile in $out/profile.json" >&2
    return 1
  }
  python3 scripts/hpa.py --dump > "$out/profile.json"
  python3 scripts/hpa.py --dump > "$out/profile.2.json"
  if ! cmp -s "$out/profile.json" "$out/profile.2.json"; then
    echo "check.sh: hpa profile dump is not reproducible" >&2
    return 1
  fi
  rm -f "$out/profile.2.json"
}

step "hpa"
if command -v python3 >/dev/null 2>&1; then
  if hpa_stage; then
    record hpa PASS
  else
    record hpa FAIL
  fi
else
  echo "check.sh: python3 not found; skipping" >&2
  record hpa SKIP "python3 not installed"
fi

# 5c. Atomics & memory-order analyzer ---------------------------------------
# Same shape as csa/hpa: fixture suite, ratchet against AMA_BASELINE.json,
# double-dump reproducibility. On a ratchet failure the current profile
# lands in build/ama/ for diffing against the committed baseline.
ama_stage() {
  local out="build/ama"
  mkdir -p "$out"
  python3 tests/ama_test/run_ama_test.py || return 1
  python3 scripts/ama.py --check || {
    python3 scripts/ama.py --dump > "$out/profile.json" 2>/dev/null
    echo "check.sh: ama ratchet failed; current profile in $out/profile.json" >&2
    return 1
  }
  python3 scripts/ama.py --dump > "$out/profile.json"
  python3 scripts/ama.py --dump > "$out/profile.2.json"
  if ! cmp -s "$out/profile.json" "$out/profile.2.json"; then
    echo "check.sh: ama profile dump is not reproducible" >&2
    return 1
  fi
  rm -f "$out/profile.2.json"
}

step "ama"
if command -v python3 >/dev/null 2>&1; then
  if ama_stage; then
    record ama PASS
  else
    record ama FAIL
  fi
else
  echo "check.sh: python3 not found; skipping" >&2
  record ama SKIP "python3 not installed"
fi

# 5d. Bench trend -----------------------------------------------------------
# Ratcheted perf gate: compares the newest committed BENCH_*.json
# trajectory point against its predecessor and FAILS on a per-series
# throughput drop or p99 rise beyond the thresholds, unless the series
# carries a justified waiver in BENCH_WAIVERS.json. Exit 3 means "no
# trajectory data" and records SKIP; the trend text is kept in
# build/bench-trend/trend.txt for diffing (CI uploads it on failure).
step "bench-trend"
if command -v python3 >/dev/null 2>&1; then
  mkdir -p build/bench-trend
  trend_note=$(python3 scripts/bench_trend.py --check 2>&1)
  trend_status=$?
  echo "$trend_note"
  echo "$trend_note" > build/bench-trend/trend.txt
  case "$trend_status" in
    0) record bench-trend PASS "$(echo "$trend_note" | head -1)" ;;
    3) record bench-trend SKIP "$(echo "$trend_note" | head -1)" ;;
    *) record bench-trend FAIL "$(echo "$trend_note" | tail -1)" ;;
  esac
else
  record bench-trend SKIP "python3 not installed"
fi

# 6. Clang thread-safety analysis -------------------------------------------
# Builds src/ with -Werror=thread-safety plus the tsa_compile_fail
# negative-compile suite; needs clang++ (GCC has no such analysis).
step "tsa"
if command -v clang++ >/dev/null 2>&1; then
  if cmake --preset clang-tsa &&
     cmake --build build-clang-tsa -j "$JOBS" &&
     ctest --test-dir build-clang-tsa -R '^tsa_' --output-on-failure; then
    record tsa PASS
  else
    record tsa FAIL
  fi
else
  echo "check.sh: clang++ not found; skipping" >&2
  record tsa SKIP "clang++ not installed"
fi

# 7. clang-tidy -------------------------------------------------------------
step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t tidy_files < <(git ls-files 'src/*.cc')
  if clang-tidy -p build --quiet "${tidy_files[@]}"; then
    record clang-tidy PASS
  else
    record clang-tidy FAIL
  fi
else
  echo "check.sh: clang-tidy not found; skipping" >&2
  record clang-tidy SKIP "clang-tidy not installed"
fi

# 8. Sanitizer configurations ----------------------------------------------
sanitizer_stage() {  # sanitizer_stage <preset>
  local preset="$1"
  step "$preset build (tests only)"
  if cmake --preset "$preset" &&
     cmake --build "build-$preset" --target dynamast_tests -j "$JOBS"; then
    run_stage "$preset" ctest --preset "$preset"
  else
    record "$preset" FAIL "build failed"
  fi
}

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  sanitizer_stage asan-ubsan
else
  record asan-ubsan SKIP "SKIP_ASAN=1"
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  sanitizer_stage tsan
else
  record tsan SKIP "SKIP_TSAN=1"
fi

# 9. Schedule exploration + SI audit ---------------------------------------
if [[ "${SKIP_FUZZ:-0}" != "1" ]]; then
  step "sched-fuzz build (tests only)"
  if cmake --preset sched-fuzz &&
     cmake --build build-sched-fuzz --target dynamast_tests -j "$JOBS"; then
    step "sched-fuzz: tier1 under schedule perturbation"
    if ctest --preset sched-fuzz -L tier1; then
      record sched-fuzz-tier1 PASS
    else
      record sched-fuzz-tier1 FAIL
    fi
    step "sched-fuzz: schedule_explore ($FUZZ_SEEDS seeds, si_checker audit)"
    if DYNAMAST_SCHED_SEEDS="$FUZZ_SEEDS" \
       ./build-sched-fuzz/tests/schedule_explore_test; then
      record sched-fuzz-explore PASS "$FUZZ_SEEDS seeds"
    else
      # The test prints the failing DYNAMAST_SCHED_SEED (or persisted
      # trace path) and dumps the offending history for offline
      # si_checker analysis.
      record sched-fuzz-explore FAIL "see replay seed/trace above"
    fi
    # Exact replay + partial-order reduction on a short budget. The
    # filtered suites assert hash stability (two replays of a recorded
    # run agree, per system and workload) and that DPOR prunes at least
    # one equivalent interleaving; dpor_test covers the engine itself.
    step "dpor: exact replay + reduction ($DPOR_EXECUTIONS executions)"
    if ./build-sched-fuzz/tests/dpor_test &&
       DYNAMAST_DPOR_EXECUTIONS="$DPOR_EXECUTIONS" DYNAMAST_SCHED_SEEDS=1 \
       ./build-sched-fuzz/tests/schedule_explore_test \
         --gtest_filter='*ExactReplayTest.*:TraceReplayTest.*:DporExploreTest.*'; then
      record dpor PASS "executed/pruned reported above"
    else
      record dpor FAIL "replay hash drift or no pruning"
    fi
  else
    record sched-fuzz-tier1 FAIL "build failed"
    record sched-fuzz-explore SKIP "build failed"
    record dpor SKIP "build failed"
  fi

  step "break-si build (auditor + explorer detection proof)"
  if cmake --preset break-si &&
     cmake --build build-break-si --target schedule_explore_test -j "$JOBS"; then
    if ./build-break-si/tests/schedule_explore_test \
         --gtest_filter='BreakSiProofTest.*:BreakSiDporTest.*'; then
      record break-si PASS
    else
      record break-si FAIL "auditor or explorer missed the injected anomaly"
    fi
  else
    record break-si FAIL "build failed"
  fi
else
  record sched-fuzz-tier1 SKIP "SKIP_FUZZ=1"
  record sched-fuzz-explore SKIP "SKIP_FUZZ=1"
  record dpor SKIP "SKIP_FUZZ=1"
  record break-si SKIP "SKIP_FUZZ=1"
fi

# ---- Summary --------------------------------------------------------------
echo
echo "==== check.sh summary ===="
failures=0
for i in "${!stages[@]}"; do
  printf '  %-20s %-4s %s\n' "${stages[$i]}" "${results[$i]}" "${notes[$i]}"
  [[ "${results[$i]}" == "FAIL" ]] && failures=$((failures + 1))
done
echo
if [[ $failures -gt 0 ]]; then
  echo "check.sh: FAILED ($failures stage(s) failed)" >&2
  exit 1
fi
echo "check.sh: all stages passed"
