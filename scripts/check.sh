#!/usr/bin/env bash
# The full correctness gate (see DESIGN.md, "Correctness tooling" and
# "Schedule exploration & history auditing"):
#
#   format       .clang-format via scripts/format-check.sh
#   build        default build (everything: tests, examples, benches)
#   tier1/tier2  default ctest
#   clang-tidy   .clang-tidy over src/ (compile_commands.json)
#   asan-ubsan   sanitizer preset build + ctest (invariants, lock checks)
#   tsan         ThreadSanitizer preset build + ctest
#   sched-fuzz   schedule-exploration preset: sync-point fuzzing across
#                $FUZZ_SEEDS seeds per test, histories audited by
#                tools/si_checker (tier2 schedule_explore_test)
#   break-si     deliberately broken grant wait; proves the auditor
#                detects the anomaly class (BreakSiProofTest)
#
# Every stage runs even if an earlier one failed; the summary table at the
# end shows PASS/FAIL/SKIP per stage and the exit code propagates any
# failure. Stages needing tools the machine lacks (clang-format /
# clang-tidy) are SKIPped rather than failed, so the gate is still useful
# on a bare-gcc box.
#
# Environment knobs:
#   JOBS=<n>         parallel build jobs (default: nproc)
#   SKIP_ASAN=1      skip the asan-ubsan stage
#   SKIP_TSAN=1      skip the tsan stage (TSan doubles the wall time)
#   SKIP_FUZZ=1      skip the sched-fuzz and break-si stages
#   FUZZ_SEEDS=<n>   seeds per fuzzed test (default 5; CI weekly uses 50)
#   DYNAMAST_SCHED_SEED=<s>  replay one failing schedule seed exactly
set -uo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
FUZZ_SEEDS="${FUZZ_SEEDS:-5}"

stages=()
results=()
notes=()

record() {  # record <stage> <PASS|FAIL|SKIP> [note]
  stages+=("$1")
  results+=("$2")
  notes+=("${3:-}")
}

step() { echo; echo "==== check.sh: $* ===="; }

run_stage() {  # run_stage <name> <cmd...>
  local name="$1"
  shift
  step "$name"
  if "$@"; then
    record "$name" PASS
  else
    record "$name" FAIL
  fi
}

# 1. Formatting -------------------------------------------------------------
step "format"
if ! command -v clang-format >/dev/null 2>&1; then
  echo "check.sh: clang-format not found; skipping" >&2
  record format SKIP "clang-format not installed"
elif scripts/format-check.sh; then
  record format PASS
else
  record format FAIL
fi

# 2. Default build + tests --------------------------------------------------
step "build (default)"
if cmake --preset default && cmake --build build -j "$JOBS"; then
  record build PASS
  run_stage "tier1+tier2" ctest --preset default
else
  record build FAIL
  record "tier1+tier2" SKIP "build failed"
fi

# 3. clang-tidy -------------------------------------------------------------
step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t tidy_files < <(git ls-files 'src/*.cc')
  if clang-tidy -p build --quiet "${tidy_files[@]}"; then
    record clang-tidy PASS
  else
    record clang-tidy FAIL
  fi
else
  echo "check.sh: clang-tidy not found; skipping" >&2
  record clang-tidy SKIP "clang-tidy not installed"
fi

# 4. Sanitizer configurations ----------------------------------------------
sanitizer_stage() {  # sanitizer_stage <preset>
  local preset="$1"
  step "$preset build (tests only)"
  if cmake --preset "$preset" &&
     cmake --build "build-$preset" --target dynamast_tests -j "$JOBS"; then
    run_stage "$preset" ctest --preset "$preset"
  else
    record "$preset" FAIL "build failed"
  fi
}

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  sanitizer_stage asan-ubsan
else
  record asan-ubsan SKIP "SKIP_ASAN=1"
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  sanitizer_stage tsan
else
  record tsan SKIP "SKIP_TSAN=1"
fi

# 5. Schedule exploration + SI audit ---------------------------------------
if [[ "${SKIP_FUZZ:-0}" != "1" ]]; then
  step "sched-fuzz build (tests only)"
  if cmake --preset sched-fuzz &&
     cmake --build build-sched-fuzz --target dynamast_tests -j "$JOBS"; then
    step "sched-fuzz: tier1 under schedule perturbation"
    if ctest --preset sched-fuzz -L tier1; then
      record sched-fuzz-tier1 PASS
    else
      record sched-fuzz-tier1 FAIL
    fi
    step "sched-fuzz: schedule_explore ($FUZZ_SEEDS seeds, si_checker audit)"
    if DYNAMAST_SCHED_SEEDS="$FUZZ_SEEDS" \
       ./build-sched-fuzz/tests/schedule_explore_test; then
      record sched-fuzz-explore PASS "$FUZZ_SEEDS seeds"
    else
      # The test prints the failing DYNAMAST_SCHED_SEED and dumps the
      # offending history for offline si_checker analysis.
      record sched-fuzz-explore FAIL "see replay seed above"
    fi
  else
    record sched-fuzz-tier1 FAIL "build failed"
    record sched-fuzz-explore SKIP "build failed"
  fi

  step "break-si build (auditor detection proof)"
  if cmake --preset break-si &&
     cmake --build build-break-si --target schedule_explore_test -j "$JOBS"; then
    if ./build-break-si/tests/schedule_explore_test \
         --gtest_filter='BreakSiProofTest.*'; then
      record break-si PASS
    else
      record break-si FAIL "auditor missed the injected anomaly"
    fi
  else
    record break-si FAIL "build failed"
  fi
else
  record sched-fuzz-tier1 SKIP "SKIP_FUZZ=1"
  record sched-fuzz-explore SKIP "SKIP_FUZZ=1"
  record break-si SKIP "SKIP_FUZZ=1"
fi

# ---- Summary --------------------------------------------------------------
echo
echo "==== check.sh summary ===="
failures=0
for i in "${!stages[@]}"; do
  printf '  %-20s %-4s %s\n' "${stages[$i]}" "${results[$i]}" "${notes[$i]}"
  [[ "${results[$i]}" == "FAIL" ]] && failures=$((failures + 1))
done
echo
if [[ $failures -gt 0 ]]; then
  echo "check.sh: FAILED ($failures stage(s) failed)" >&2
  exit 1
fi
echo "check.sh: all stages passed"
