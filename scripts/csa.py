#!/usr/bin/env python3
"""csa.py - critical-section cost analyzer for the DynaMast tree.

Reconstructs the code executed while each annotated lock class is held and
profiles it for blocking or expensive operations, so that the cost of every
critical section is reviewed, ratcheted, and justified rather than drifting
silently.

How it works
------------
The lexical C++ front end (comment/string blanking, scope reconstruction,
declaration model, receiver and call resolution, fixpoint propagation) is
shared with hpa.py and lives in ``cpp_model.py``; csa layers the
critical-section semantics on top:

1.  Critical-section regions are reconstructed from scoped-locker
    statements (``MutexLock``/``WriterMutexLock``/``ReaderMutexLock``/
    ``RawMutexLock`` - region runs to the end of the enclosing block) and
    from ``DYNAMAST_REQUIRES``/``DYNAMAST_REQUIRES_SHARED`` annotations
    (whole function body).
2.  The transitive closure of blocking and expensive operations is
    propagated to every caller with a minimal witness chain.
3.  Every (lock class, holder function, operation) triple becomes an edge
    in the profile.

Operation vocabulary
--------------------
``blocking:<fn>``      call to a ``DYNAMAST_BLOCKING``-annotated function
                       (log append, simulated network send, condvar wait,
                       lock-manager acquire, simulated CPU charge, ...).
``expensive:<fn>``     call to a ``DYNAMAST_EXPENSIVE``-annotated function
                       (histogram/latency recording, trace emission,
                       record serialization, registry lookups, ...).
``lock:<class>``       acquisition of another lock class inside the
                       critical section (nesting / lock-order edge).
``builtin.sleep``      direct ``std::this_thread::sleep_for/until``.
``builtin.alloc.*``    ``new`` / ``make_unique`` / ``make_shared`` /
                       ``malloc`` in the critical section.
``builtin.str.to_string``  formatting allocation under a lock.
``expensive:trace::Span::record``  a ``trace::Span`` constructed inside
                       the region: its destructor records the span (taking
                       the tracer's leaf lock) before the region unlocks.

The ratchet
-----------
``CSA_BASELINE.json`` (committed at the repo root) freezes the profile.
``--check`` recomputes it and fails when:

* an edge appears that is not in the baseline (the failure names the lock
  class, the witness call chain, and the offending operation) - unless an
  allowlist entry with a justification covers it, in which case the
  instruction is to run ``--update``;
* an edge disappeared (the critical section shrank - ``--update`` ratchets
  the baseline down; growth back would then fail);
* an allowlist entry is unjustified, names an unregistered lock class
  (DESIGN.md lock-class registry; synthesized ``raw.*`` classes are
  exempt), or matches no current edge (stale);
* a function whose body sleeps directly lacks ``DYNAMAST_BLOCKING``
  (annotation-coverage rule, so new blocking primitives cannot hide from
  the propagation).

``--update`` refuses to record a new edge unless an allowlist entry
justifies it, then rewrites the baseline deterministically (sorted keys,
two-space indent) so consecutive runs are byte-identical.

Known limitations (by construction, all under-approximations are
deterministic): calls through virtual interfaces and function pointers are
not resolved; container growth (vector push_back etc.) is not modeled;
destructors other than trace::Span are invisible.  The scheduler, DPOR,
sched-trace and debug-mutex internals implement the instrumented
primitives themselves and are exempt from body analysis (their public
annotations still participate).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpp_model
from cpp_model import is_exempt, resolve_mutex_expr, strip_root

BASELINE_NAME = "CSA_BASELINE.json"
REGISTRY_BEGIN = "<!-- lock-class-registry:begin -->"
REGISTRY_END = "<!-- lock-class-registry:end -->"


# ---------------------------------------------------------------------------
# Seeding and edge generation


def op_for_callee(info):
    if info.blocking:
        return "blocking:" + strip_root(info.qual)
    if info.expensive:
        return "expensive:" + strip_root(info.qual)
    return None


def _csa_seeds(project, key, merged):
    """Ops a function performs directly, for cpp_model.propagate."""
    out = []
    for _, op in merged.ops:
        out.append(op)
    for entry in merged.lockers:
        out.append("lock:" + entry[1])
    for _, callee in merged.calls:
        cop = op_for_callee(project.funcs[callee])
        if cop:
            out.append(cop)
    return out


def collect_edges(project, facts, ops_map):
    """Returns {(lock_class, function, op): chain-list} over all regions."""
    edges = {}

    def add(lock_class, holder, op, chain):
        key = (lock_class, holder, op)
        cand = (len(chain), tuple(chain))
        old = edges.get(key)
        if old is None or (len(old), tuple(old)) > cand:
            edges[key] = list(chain)

    for fkey in sorted(facts):
        info = project.funcs[fkey]
        holder = strip_root(info.qual)
        merged = facts[fkey]
        regions = []   # (lock_class, start, end)
        for entry in merged.lockers:
            offset, lock_class, end = entry[0], entry[1], entry[2]
            regions.append((lock_class, offset, end))
        if info.requires:
            for rel, scope in info.bodies:
                if is_exempt(rel):
                    continue
                body_text = scope.header + \
                    project.blanked[rel][scope.open + 1:scope.close]
                for expr in info.requires:
                    lock_class = resolve_mutex_expr(project, expr,
                                                    body_text, info.cls)
                    if lock_class is not None:
                        regions.append((lock_class, scope.open,
                                        scope.close))
        for lock_class, start, end in regions:
            for offset, op in merged.ops:
                if start < offset < end:
                    add(lock_class, holder, op, [holder])
            for entry in merged.lockers:
                if entry[1] != lock_class and start < entry[0] < end:
                    add(lock_class, holder, "lock:" + entry[1], [holder])
            for offset, callee in merged.calls:
                if not (start < offset < end):
                    continue
                cop = op_for_callee(project.funcs[callee])
                if cop:
                    add(lock_class, holder, cop, [holder])
                for op, chain in sorted(ops_map[callee].items()):
                    if holder in chain:
                        continue
                    add(lock_class, holder, op, [holder] + list(chain))
    return edges


def annotation_coverage_violations(project, facts):
    """R3: a body that sleeps directly must be DYNAMAST_BLOCKING."""
    out = []
    for key in sorted(facts):
        info = project.funcs[key]
        if info.blocking:
            continue
        if any(op == "builtin.sleep" for _, op in facts[key].ops):
            out.append(
                "csa: unannotated-blocking: %s:%d: %s sleeps directly but "
                "is not declared DYNAMAST_BLOCKING (annotate the "
                "declaration so callers inherit the edge)" %
                (info.file, info.line, strip_root(info.qual)))
    return out


# ---------------------------------------------------------------------------
# Baseline, registry, allowlist


def parse_registry(root):
    design = os.path.join(root, "DESIGN.md")
    classes = set()
    try:
        with open(design, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return classes
    begin = text.find(REGISTRY_BEGIN)
    end = text.find(REGISTRY_END)
    if begin < 0 or end < 0:
        return classes
    for row in text[begin:end].splitlines():
        m = re.match(r"\|\s*`([^`]+)`\s*\|", row)
        if m:
            classes.add(m.group(1))
    return classes


def edges_to_json(edges):
    out = []
    for (lock_class, holder, op) in sorted(edges):
        out.append({
            "lock_class": lock_class,
            "function": holder,
            "op": op,
            "chain": edges[(lock_class, holder, op)],
        })
    return out


def profile_document(edges, allowlist):
    return {
        "version": 1,
        "edges": edges_to_json(edges),
        "allowlist": allowlist,
    }


def dump_json(doc):
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def load_baseline(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError:
        return None
    except ValueError as e:
        raise SystemExit("csa: %s is not valid JSON: %s" % (path, e))


def allowlist_matches(entry, lock_class, holder, op):
    if entry.get("lock_class") != lock_class:
        return False
    if entry.get("op") != op:
        return False
    fn = entry.get("function")
    return fn is None or fn == holder


def validate_allowlist(allowlist, registry, edges):
    """Justification, registered class, and staleness checks."""
    problems = []
    for i, entry in enumerate(allowlist):
        where = "allowlist[%d] (%s / %s)" % (
            i, entry.get("lock_class", "?"), entry.get("op", "?"))
        if not str(entry.get("justification", "")).strip():
            problems.append("csa: allowlist: %s has no justification" %
                            where)
        lock_class = entry.get("lock_class", "")
        if not lock_class.startswith("raw.") and lock_class not in registry:
            problems.append(
                "csa: allowlist: %s names lock class %r which is not in "
                "the DESIGN.md lock-class registry" % (where, lock_class))
        if not any(allowlist_matches(entry, lc, fn, op)
                   for (lc, fn, op) in edges):
            problems.append(
                "csa: allowlist: %s matches no current edge (stale entry: "
                "the critical section no longer performs this operation; "
                "delete the entry)" % where)
    return problems


def format_edge(lock_class, holder, op, chain):
    return "%s: %s -> %s" % (lock_class, " -> ".join(chain), op)


def diff_against_baseline(edges, baseline):
    base_edges = {(e["lock_class"], e["function"], e["op"])
                  for e in baseline.get("edges", [])}
    allowlist = baseline.get("allowlist", [])
    new = sorted(k for k in edges if k not in base_edges)
    gone = sorted(k for k in base_edges if k not in edges)
    problems = []
    for (lock_class, holder, op) in new:
        covered = any(allowlist_matches(e, lock_class, holder, op)
                      for e in allowlist)
        chain = edges[(lock_class, holder, op)]
        if covered:
            problems.append(
                "csa: new-edge: %s\n  allowlisted; run scripts/csa.py "
                "--update to record it in %s" %
                (format_edge(lock_class, holder, op, chain),
                 BASELINE_NAME))
        else:
            problems.append(
                "csa: new-edge: %s\n  new blocking/expensive work inside "
                "the `%s` critical section. Move it out from under the "
                "lock, or add an allowlist entry with a justification to "
                "%s and run scripts/csa.py --update" %
                (format_edge(lock_class, holder, op, chain), lock_class,
                 BASELINE_NAME))
    for (lock_class, holder, op) in gone:
        problems.append(
            "csa: missing-edge: %s: %s -> %s\n  the critical section "
            "shrank (good); run scripts/csa.py --update to ratchet the "
            "baseline down" % (lock_class, holder, op))
    return problems


# ---------------------------------------------------------------------------
# CLI


def analyze(root):
    project = cpp_model.load_project(root, tool="csa")
    facts = cpp_model.compute_facts(project)
    ops_map = cpp_model.propagate(project, facts, _csa_seeds)
    edges = collect_edges(project, facts, ops_map)
    r3 = annotation_coverage_violations(project, facts)
    return edges, r3


def main(argv):
    parser = argparse.ArgumentParser(
        prog="csa.py",
        description="Critical-section cost analyzer (see module docstring).")
    parser.add_argument("--root", default=None,
                        help="repository root (default: script's parent)")
    parser.add_argument("--baseline", default=None,
                        help="baseline path (default: <root>/%s)" %
                        BASELINE_NAME)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="verify the profile against the baseline "
                      "(default mode)")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the baseline (refuses unjustified "
                      "new edges)")
    mode.add_argument("--dump", action="store_true",
                      help="print the current profile JSON to stdout")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print("csa: no src/ under %s" % root, file=sys.stderr)
        return 2
    baseline_path = args.baseline or os.path.join(root, BASELINE_NAME)

    edges, r3 = analyze(root)
    registry = parse_registry(root)
    baseline = load_baseline(baseline_path)
    allowlist = (baseline or {}).get("allowlist", [])

    if args.dump:
        sys.stdout.write(dump_json(profile_document(edges, allowlist)))
        return 0

    problems = list(r3)
    problems += validate_allowlist(allowlist, registry, edges)

    if args.update:
        new_unjustified = []
        base_edges = {(e["lock_class"], e["function"], e["op"])
                      for e in (baseline or {}).get("edges", [])}
        if baseline is not None:
            for key in sorted(edges):
                if key in base_edges:
                    continue
                lock_class, holder, op = key
                if not any(allowlist_matches(e, lock_class, holder, op)
                           for e in allowlist):
                    new_unjustified.append(
                        "csa: new-edge: %s\n  refusing to bake an "
                        "unjustified edge into the baseline; add an "
                        "allowlist entry first" %
                        format_edge(lock_class, holder, op, edges[key]))
        problems += new_unjustified
        if problems:
            print("\n".join(problems), file=sys.stderr)
            return 1
        with open(baseline_path, "w", encoding="utf-8") as f:
            f.write(dump_json(profile_document(edges, allowlist)))
        print("csa: wrote %s (%d edges, %d allowlist entries)" %
              (baseline_path, len(edges), len(allowlist)))
        return 0

    # --check (default)
    if baseline is None:
        print("csa: no-baseline: %s does not exist; run scripts/csa.py "
              "--update to create it" % baseline_path, file=sys.stderr)
        return 1
    problems += diff_against_baseline(edges, baseline)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print("csa: %d problem(s)" % len(problems), file=sys.stderr)
        return 1
    print("csa: baseline OK (%d edges across %d lock classes)" %
          (len(edges), len({k[0] for k in edges})))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
