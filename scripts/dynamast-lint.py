#!/usr/bin/env python3
"""dynamast-lint: project-invariant linter for the DynaMast repo.

Checks invariants that neither the compiler nor clang-tidy can see,
because they span files or live in string literals:

  lock-class      every DebugMutex/DebugSharedMutex declaration names a
                  `subsystem.name` lock class listed in DESIGN.md's
                  lock-class registry table, and every registry row still
                  corresponds to a declaration in src/.
  sched-op        every DYNAMAST_SCHED_OP / DYNAMAST_SCHED_OP_SCOPE hook
                  uses a declared sched::OpKind; OpKindName covers every
                  enumerator; kNumOpKinds equals the enumerator count.
  history-pairing any file referencing history EventKind::kCommit also
                  references EventKind::kAbort (and vice versa), so no
                  emitter records commits without the abort path the SI
                  auditor needs.
  metric-naming   metric family names passed to GetCounter/GetGauge/
                  GetHistogram are snake_case, counter names end in
                  `_total`, and label keys are snake_case.
  escape-justification
                  every DYNAMAST_NO_THREAD_SAFETY_ANALYSIS site carries a
                  `tsa-escape(<lock.class>): reason` comment naming a
                  registered lock class, and every CSA_BASELINE.json
                  allowlist entry has a justification, names a registered
                  lock class (synthesized `raw.*` classes are exempt), and
                  still matches an edge in the baseline (stale-entry
                  detection for scripts/csa.py's ratchet).
  hot-path-root   every DYNAMAST_HOT_PATH annotation in src/ has a row in
                  DESIGN.md's hot-path-root registry table, and every
                  registry row still corresponds to an annotated function
                  (the reviewed root list scripts/hpa.py profiles cannot
                  drift from the code).
  lock-profile-label
                  every literal `{"lock_class", "<name>"}` label passed to
                  GetCounter/GetGauge/GetHistogram names a class in
                  DESIGN.md's lock-class registry, so the contention
                  profiler's lock_* series stay joinable against the
                  registry table (a typo'd class would silently fork a
                  series no lock ever feeds).
  atomic-registry every row in DESIGN.md's atomic-field registry table
                  names a real std::atomic field in src/ (stale-row
                  detection) and declares a role from scripts/ama.py's
                  closed role set, so the memory-order protocol table
                  cannot drift from the code it governs.

Usage: dynamast-lint.py [--root DIR] [--rule RULE]...
Exit status 0 when clean, 1 when violations were found, 2 on usage or
tree-shape errors. Messages: `dynamast-lint: <rule>: <file>:<line>: ...`.
"""

import argparse
import json
import os
import re
import sys

RULES = ("lock-class", "sched-op", "history-pairing", "metric-naming",
         "escape-justification", "hot-path-root", "lock-profile-label",
         "atomic-registry")

SNAKE_RE = re.compile(r"^[a-z][a-z0-9_]*$")
LOCK_CLASS_RE = re.compile(r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")

REGISTRY_BEGIN = "<!-- lock-class-registry:begin -->"
REGISTRY_END = "<!-- lock-class-registry:end -->"

HOT_PATH_REGISTRY_BEGIN = "<!-- hot-path-root-registry:begin -->"
HOT_PATH_REGISTRY_END = "<!-- hot-path-root-registry:end -->"

ATOMIC_REGISTRY_BEGIN = "<!-- atomic-field-registry:begin -->"
ATOMIC_REGISTRY_END = "<!-- atomic-field-registry:end -->"

# `mutable DebugMutex mu_{"site.state"};`, `DebugSharedMutex mu{"x.y"};`
MUTEX_DECL_RE = re.compile(
    r"\bDebug(?:Shared)?Mutex\s+\w+\s*[{(]\s*\"([^\"]*)\"")

SCHED_OP_RE = re.compile(r"\bDYNAMAST_SCHED_OP\(\s*(k\w+)")
SCHED_OP_SCOPE_RE = re.compile(r"\bDYNAMAST_SCHED_OP_SCOPE\(\s*\w+\s*,\s*(k\w+)")

METRIC_CALL_RE = re.compile(r"\bGet(Counter|Gauge|Histogram)\s*\(")
LABEL_KEY_RE = re.compile(r"\{\s*\"([^\"]*)\"")
# A literal lock_class label pair: {"lock_class", "site.state"}
LOCK_CLASS_LABEL_RE = re.compile(r"\{\s*\"lock_class\"\s*,\s*\"([^\"]*)\"")

ESCAPE_RE = re.compile(r"\bDYNAMAST_NO_THREAD_SAFETY_ANALYSIS\b")
# `// tsa-escape(selector.partition): dynamic lock set — ...`
ESCAPE_MARKER_RE = re.compile(r"tsa-escape\(([^()]*)\):\s*(\S.*)?")
# Lines of comment context searched above an escape site for its marker.
ESCAPE_WINDOW = 8


class Linter:
    def __init__(self, root):
        self.root = root
        self.violations = []
        self._registry = None

    def report(self, rule, path, line, message):
        rel = os.path.relpath(path, self.root)
        self.violations.append(f"dynamast-lint: {rule}: {rel}:{line}: {message}")

    # ---------------------------------------------------------------- util

    def src_files(self, exts=(".h", ".cc")):
        src = os.path.join(self.root, "src")
        for dirpath, _, names in sorted(os.walk(src)):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)

    @staticmethod
    def read(path):
        with open(path, encoding="utf-8") as f:
            return f.read()

    @staticmethod
    def line_of(text, offset):
        return text.count("\n", 0, offset) + 1

    # ---------------------------------------------------------- lock-class

    def parse_registry(self):
        """Registry rows from DESIGN.md: {class name: line number}.

        Cached: several rules consult the registry; tree-shape problems
        are only reported once (under the lock-class rule).
        """
        if self._registry is not None:
            return self._registry
        self._registry = self._parse_registry_uncached()
        return self._registry

    def _parse_registry_uncached(self):
        design = os.path.join(self.root, "DESIGN.md")
        if not os.path.exists(design):
            self.report("lock-class", design, 1, "DESIGN.md not found")
            return {}
        text = self.read(design)
        begin = text.find(REGISTRY_BEGIN)
        end = text.find(REGISTRY_END)
        if begin < 0 or end < 0 or end < begin:
            self.report("lock-class", design, 1,
                        "lock-class registry markers not found "
                        f"({REGISTRY_BEGIN} ... {REGISTRY_END})")
            return {}
        entries = {}
        base_line = self.line_of(text, begin)
        for i, row in enumerate(text[begin:end].splitlines()):
            m = re.match(r"\|\s*`([^`]+)`\s*\|", row)
            if m:
                entries[m.group(1)] = base_line + i
        if not entries:
            self.report("lock-class", design, base_line,
                        "lock-class registry table is empty")
        return entries

    def rule_lock_class(self):
        registry = self.parse_registry()
        declared = set()
        for path in self.src_files():
            if os.path.basename(path) in ("debug_mutex.h", "debug_mutex.cc"):
                continue  # wrapper definitions, not lock declarations
            text = self.read(path)
            for m in MUTEX_DECL_RE.finditer(text):
                cls = m.group(1)
                line = self.line_of(text, m.start())
                declared.add(cls)
                if not LOCK_CLASS_RE.match(cls):
                    self.report("lock-class", path, line,
                                f'lock class "{cls}" is not of the form '
                                "subsystem.name (lowercase snake_case)")
                elif registry and cls not in registry:
                    self.report("lock-class", path, line,
                                f'lock class "{cls}" is not listed in the '
                                "DESIGN.md lock-class registry")
        design = os.path.join(self.root, "DESIGN.md")
        for cls, line in sorted(registry.items()):
            if cls not in declared:
                self.report("lock-class", design, line,
                            f'registry row "{cls}" matches no '
                            "DebugMutex/DebugSharedMutex declaration in src/ "
                            "(stale entry)")

    # ------------------------------------------------------------ sched-op

    def rule_sched_op(self):
        header = os.path.join(self.root, "src", "common", "sched_trace.h")
        impl = os.path.join(self.root, "src", "common", "sched_trace.cc")

        enumerators = {}
        declared_count = None
        if os.path.exists(header):
            text = self.read(header)
            m = re.search(r"enum\s+class\s+OpKind[^{]*\{([^}]*)\}", text)
            if m:
                for em in re.finditer(r"(k\w+)\s*=?", m.group(1)):
                    enumerators[em.group(1)] = self.line_of(
                        text, m.start(1) + em.start())
            else:
                self.report("sched-op", header, 1,
                            "enum class OpKind not found")
            cm = re.search(r"kNumOpKinds\s*=\s*(\d+)", text)
            if cm:
                declared_count = (int(cm.group(1)),
                                  self.line_of(text, cm.start()))

        # Hook sites must use declared kinds.
        used = False
        for path in self.src_files():
            text = self.read(path)
            for m in list(SCHED_OP_RE.finditer(text)) + list(
                    SCHED_OP_SCOPE_RE.finditer(text)):
                line_start = text.rfind("\n", 0, m.start()) + 1
                if text[line_start:m.start()].lstrip().startswith("#define"):
                    continue  # the hook macro's own definition
                used = True
                kind = m.group(1)
                if enumerators and kind not in enumerators:
                    self.report("sched-op", path, self.line_of(text, m.start()),
                                f"sched hook uses {kind}, which is not a "
                                "declared sched::OpKind")
        if used and not enumerators:
            self.report("sched-op", header, 1,
                        "sched hooks are used but no OpKind enum was found")
        if not enumerators:
            return

        if declared_count is not None and declared_count[0] != len(enumerators):
            self.report("sched-op", header, declared_count[1],
                        f"kNumOpKinds is {declared_count[0]} but OpKind "
                        f"declares {len(enumerators)} enumerators")

        # The trace codec's name table must cover every kind, or record/
        # replay dumps become unauditable for the missing ones.
        if os.path.exists(impl):
            text = self.read(impl)
            fn = re.search(
                r"OpKindName\s*\([^)]*\)\s*\{(.*?)\n\}", text, re.DOTALL)
            if not fn:
                self.report("sched-op", impl, 1,
                            "OpKindName definition not found")
                return
            cases = set(re.findall(r"case\s+OpKind::(k\w+)", fn.group(1)))
            for kind, line in sorted(enumerators.items()):
                if kind not in cases:
                    self.report("sched-op", impl,
                                self.line_of(text, fn.start()),
                                f"OpKindName has no case for OpKind::{kind} "
                                f"(declared at sched_trace.h:{line})")

    # ----------------------------------------------------- history-pairing

    def rule_history_pairing(self):
        # Emission happens in .cc files; headers only declare the enum.
        for path in self.src_files(exts=(".cc",)):
            text = self.read(path)
            commit = re.search(r"EventKind::kCommit\b", text)
            abort = re.search(r"EventKind::kAbort\b", text)
            if commit and not abort:
                self.report("history-pairing", path,
                            self.line_of(text, commit.start()),
                            "file references history EventKind::kCommit but "
                            "never EventKind::kAbort (unpaired emission)")
            elif abort and not commit:
                self.report("history-pairing", path,
                            self.line_of(text, abort.start()),
                            "file references history EventKind::kAbort but "
                            "never EventKind::kCommit (unpaired emission)")

    # ------------------------------------------------------ hot-path-root

    def rule_hot_path_root(self):
        """DESIGN.md's hot-path-root registry == the annotated roots."""
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        import cpp_model  # shared lexical front end (also used by hpa)

        design = os.path.join(self.root, "DESIGN.md")
        rows = {}
        begin_line = 1
        if os.path.exists(design):
            text = self.read(design)
            begin = text.find(HOT_PATH_REGISTRY_BEGIN)
            end = text.find(HOT_PATH_REGISTRY_END)
            if 0 <= begin < end:
                begin_line = self.line_of(text, begin)
                for i, row in enumerate(text[begin:end].splitlines()):
                    m = re.match(r"\|\s*`([^`]+)`\s*\|", row)
                    if m:
                        rows[m.group(1)] = begin_line + i

        project = cpp_model.load_project(self.root, tool="dynamast-lint")
        discovered = {}
        for info in project.funcs.values():
            if info.hot_path:
                discovered[cpp_model.strip_root(info.qual)] = info

        for name in sorted(set(discovered) - set(rows)):
            info = discovered[name]
            self.report(
                "hot-path-root", os.path.join(self.root, info.file),
                info.line,
                f"`{name}` is annotated DYNAMAST_HOT_PATH but has no row "
                "in the DESIGN.md hot-path-root registry table (every "
                "profiled root must be reviewed and documented there)")
        for name in sorted(set(rows) - set(discovered)):
            self.report(
                "hot-path-root", design, rows[name],
                f"registry row `{name}` matches no DYNAMAST_HOT_PATH "
                "annotation in src/ (stale entry: the root was removed or "
                "renamed; update the table)")

    # ---------------------------------------------------- atomic-registry

    def rule_atomic_registry(self):
        """DESIGN.md's atomic-field registry rows are real and well-roled."""
        design = os.path.join(self.root, "DESIGN.md")
        if not os.path.exists(design):
            return  # trees without a DESIGN.md have nothing to check
        text = self.read(design)
        begin = text.find(ATOMIC_REGISTRY_BEGIN)
        end = text.find(ATOMIC_REGISTRY_END)
        if not 0 <= begin < end:
            return  # no atomic-field registry in this tree

        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        import ama  # shared role set + atomic discovery
        import cpp_model

        rows = {}
        begin_line = self.line_of(text, begin)
        for i, row in enumerate(text[begin:end].splitlines()):
            m = re.match(r"\|\s*`([^`]+)`\s*\|\s*([^|]+?)\s*\|", row)
            if m:
                rows[m.group(1)] = (m.group(2).strip("`"), begin_line + i)

        for fid in sorted(rows):
            role, line = rows[fid]
            if role not in ama.ROLES:
                self.report(
                    "atomic-registry", design, line,
                    f"registry row `{fid}` declares role `{role}`, which "
                    "is not in the closed role set "
                    f"({', '.join(ama.ROLES)})")

        project = cpp_model.load_project(self.root, tool="dynamast-lint")
        fields = {f.fid for f in ama.discover_atomics(project)}
        for fid in sorted(set(rows) - fields):
            self.report(
                "atomic-registry", design, rows[fid][1],
                f"registry row `{fid}` matches no atomic field in src/ "
                "(stale entry: the field was removed or renamed; update "
                "the table)")

    # ------------------------------------------------------- metric-naming

    @staticmethod
    def call_args(text, open_paren):
        """Text of a balanced (...) argument list starting at open_paren."""
        depth = 0
        for i in range(open_paren, len(text)):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    return text[open_paren + 1:i]
        return text[open_paren + 1:]

    def rule_metric_naming(self):
        for path in self.src_files():
            if os.path.basename(path) in ("metrics.h", "metrics.cc"):
                continue  # the registry implementation itself
            text = self.read(path)
            for m in METRIC_CALL_RE.finditer(text):
                line = self.line_of(text, m.start())
                kind = m.group(1)
                args = self.call_args(text, m.end() - 1)
                name_m = re.match(r'\s*"([^"]*)"', args)
                if not name_m:
                    continue  # name passed as a variable; can't lint
                name = name_m.group(1)
                if not SNAKE_RE.match(name):
                    self.report("metric-naming", path, line,
                                f'metric family "{name}" is not snake_case')
                if kind == "Counter" and not name.endswith("_total"):
                    self.report("metric-naming", path, line,
                                f'counter "{name}" does not end in "_total"')
                for lm in LABEL_KEY_RE.finditer(args[name_m.end():]):
                    key = lm.group(1)
                    if not SNAKE_RE.match(key):
                        self.report("metric-naming", path, line,
                                    f'label key "{key}" on metric "{name}" '
                                    "is not snake_case")


    # -------------------------------------------------- lock-profile-label

    def rule_lock_profile_label(self):
        registry = self.parse_registry()
        if not registry:
            return  # tree-shape problem already reported under lock-class
        for path in self.src_files():
            text = self.read(path)
            for m in METRIC_CALL_RE.finditer(text):
                args = self.call_args(text, m.end() - 1)
                for lm in LOCK_CLASS_LABEL_RE.finditer(args):
                    cls = lm.group(1)
                    if cls in registry:
                        continue
                    line = self.line_of(text, m.end() + lm.start())
                    self.report(
                        "lock-profile-label", path, line,
                        f'lock_class label "{cls}" is not in the DESIGN.md '
                        "lock-class registry (lock_* profiler series must "
                        "be keyed by registered classes; a typo here forks "
                        "a series no lock ever feeds)")

    # ----------------------------------------------- escape-justification

    def rule_escape_justification(self):
        registry = self.parse_registry()
        self._check_escape_sites(registry)
        self._check_csa_allowlist(registry)

    def _check_escape_sites(self, registry):
        for path in self.src_files():
            if os.path.basename(path) == "thread_annotations.h":
                continue  # the macro's definition and documentation
            text = self.read(path)
            lines = text.splitlines()
            for m in ESCAPE_RE.finditer(text):
                line_start = text.rfind("\n", 0, m.start()) + 1
                if text[line_start:m.start()].lstrip().startswith("#define"):
                    continue
                line = self.line_of(text, m.start())
                marker = None
                window = lines[max(0, line - 1 - ESCAPE_WINDOW):line - 1]
                for candidate in reversed(window):
                    if "//" not in candidate:
                        continue
                    mm = ESCAPE_MARKER_RE.search(candidate)
                    if mm:
                        marker = mm
                        break
                if marker is None:
                    self.report(
                        "escape-justification", path, line,
                        "NO_THREAD_SAFETY_ANALYSIS without a "
                        "`// tsa-escape(<lock.class>): reason` comment in "
                        f"the {ESCAPE_WINDOW} lines above (say which lock "
                        "class TSA cannot model here, and why the code is "
                        "still safe)")
                    continue
                cls = marker.group(1).strip()
                reason = (marker.group(2) or "").strip()
                if registry and cls not in registry:
                    self.report(
                        "escape-justification", path, line,
                        f'tsa-escape names lock class "{cls}", which is '
                        "not in the DESIGN.md lock-class registry")
                if not reason:
                    self.report(
                        "escape-justification", path, line,
                        "tsa-escape marker has an empty reason")

    def _check_csa_allowlist(self, registry):
        baseline = os.path.join(self.root, "CSA_BASELINE.json")
        if not os.path.exists(baseline):
            return  # tree predates the csa ratchet (or fixture without it)
        try:
            doc = json.loads(self.read(baseline))
        except ValueError as e:
            self.report("escape-justification", baseline, 1,
                        f"CSA_BASELINE.json is not valid JSON: {e}")
            return
        edges = doc.get("edges", [])
        for i, entry in enumerate(doc.get("allowlist", [])):
            cls = entry.get("lock_class", "")
            op = entry.get("op", "")
            where = f"allowlist[{i}] ({cls} / {op})"
            if not str(entry.get("justification", "")).strip():
                self.report("escape-justification", baseline, 1,
                            f"{where} has no justification")
            if registry and cls not in registry \
                    and not cls.startswith("raw."):
                self.report("escape-justification", baseline, 1,
                            f'{where} names lock class "{cls}", which is '
                            "not in the DESIGN.md lock-class registry")
            fn = entry.get("function")
            if not any(e.get("lock_class") == cls and e.get("op") == op
                       and (fn is None or e.get("function") == fn)
                       for e in edges):
                self.report("escape-justification", baseline, 1,
                            f"{where} matches no edge in the baseline "
                            "(stale entry: the critical section no longer "
                            "performs this operation; delete it)")


def main():
    parser = argparse.ArgumentParser(
        prog="dynamast-lint",
        description="Project-invariant linter for the DynaMast repo.")
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root to lint (default: this script's repo)")
    parser.add_argument(
        "--rule", action="append", choices=RULES, dest="rules",
        help="run only this rule (repeatable; default: all rules)")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"dynamast-lint: error: no src/ directory under {root}",
              file=sys.stderr)
        return 2

    linter = Linter(root)
    rules = args.rules or list(RULES)
    dispatch = {
        "lock-class": linter.rule_lock_class,
        "sched-op": linter.rule_sched_op,
        "history-pairing": linter.rule_history_pairing,
        "metric-naming": linter.rule_metric_naming,
        "escape-justification": linter.rule_escape_justification,
        "hot-path-root": linter.rule_hot_path_root,
        "lock-profile-label": linter.rule_lock_profile_label,
        "atomic-registry": linter.rule_atomic_registry,
    }
    for rule in rules:
        dispatch[rule]()

    for violation in linter.violations:
        print(violation)
    if linter.violations:
        print(f"dynamast-lint: {len(linter.violations)} violation(s) in "
              f"{root}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
