"""cpp_model.py - shared lexical C++ front end for the tree's analyzers.

Both csa.py (critical-section cost) and hpa.py (hot-path cost) are
deterministic lexical analyzers over the sources named by
``build/compile_commands.json`` (falling back to a walk of ``src/``).
They share this module, which needs no compiler:

1.  Comments and string literals are blanked (lengths preserved, quote
    characters kept) and a brace-matching scope walker reconstructs
    namespaces, classes, and function bodies, including out-of-line
    ``Class::Method`` definitions.
2.  Mutex fields (``DebugMutex``/``DebugSharedMutex`` with their registry
    name string, plus ``RawMutex`` fields which get a synthesized
    ``raw.<file>.<field>`` class) and typed member fields are indexed so
    receiver expressions such as ``logs_->TopicFor(id)->Append(...)`` or
    ``stripe.cv.wait_until(...)`` resolve to concrete methods.
3.  Scoped-locker statements (``MutexLock``/``WriterMutexLock``/
    ``ReaderMutexLock``/``RawMutexLock``) are resolved to lock classes
    with their region end (end of the enclosing block).
4.  A call graph is built from receiver-resolved, class-local, and
    statically qualified calls; ``propagate`` computes the transitive
    closure of seeded operations to every caller with a minimal witness
    chain.

The analyzers differ only in what they seed (csa: blocking/expensive
annotations and builtin sleep/alloc/format ops; hpa: allocations, wide
copies, formatting, lock acquisitions tagged with their performer) and
in how they turn the propagated map into ratcheted edges.

Known limitations (by construction, all under-approximations are
deterministic): calls through virtual interfaces and function pointers
are not resolved here (hpa adds an override-based resolution pass on
top); destructors other than trace::Span are invisible.  The scheduler,
DPOR, sched-trace and debug-mutex internals implement the instrumented
primitives themselves and are exempt from body analysis (their public
annotations still participate).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field

LOCKER_TYPES = ("MutexLock", "WriterMutexLock", "ReaderMutexLock",
                "RawMutexLock")
MUTEX_TYPES = ("DebugMutex", "DebugSharedMutex", "RawMutex")

# Files whose function bodies implement the instrumented primitives (the
# scheduler virtualizes the sleeps and waits that the rest of the tree is
# measured against).  Declarations and annotations in them still load.
EXEMPT_BODY_FILES = (
    "common/debug_mutex.h",
    "common/scheduler.h",
    "common/scheduler.cc",
    "common/sched_trace.h",
    "common/sched_trace.cc",
    "common/dpor.h",
    "common/dpor.cc",
)

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "do", "else", "return",
    "sizeof", "alignof", "decltype", "noexcept", "throw", "delete",
    "co_await", "co_return", "assert", "defined", "operator",
}

BUILTIN_CALLS = {
    "sleep_for": "builtin.sleep",
    "sleep_until": "builtin.sleep",
    "malloc": "builtin.alloc.malloc",
    "calloc": "builtin.alloc.malloc",
    "to_string": "builtin.str.to_string",
}

SMART_PTR_WRAPPERS = ("unique_ptr", "shared_ptr", "atomic", "optional")
CONTAINER_WRAPPERS = ("vector", "array", "deque")

TYPE_KEYWORDS = {
    "const", "constexpr", "static", "virtual", "inline", "mutable",
    "volatile", "explicit", "friend", "typename", "class", "struct",
    "unsigned", "signed", "long", "short", "auto", "void",
    "DYNAMAST_BLOCKING", "DYNAMAST_EXPENSIVE",
}

MAX_CHAIN = 12


# ---------------------------------------------------------------------------
# Text preparation


def blank_text(text):
    """Replaces comments and string/char literals with spaces.

    Newlines are preserved so offsets and line numbers survive; everything
    else inside a comment or literal becomes a space, so braces and quotes
    in comments cannot confuse the scope walker.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            if c == "'" and i > 0 and text[i - 1].isalnum() \
                    and i + 1 < n and (text[i + 1].isalnum()
                                       or text[i + 1] == "'"):
                # C++14 digit separator (500'000), not a char literal.
                i += 1
                continue
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    # Preprocessor directives neither open scopes nor end with ';', so a
    # surviving `#include` would bleed into the next scope's header text.
    # Blank whole directive lines (following backslash continuations).
    lines = "".join(out).split("\n")
    idx = 0
    while idx < len(lines):
        if lines[idx].lstrip().startswith("#"):
            while True:
                continued = lines[idx].rstrip().endswith("\\")
                lines[idx] = " " * len(lines[idx])
                if not continued or idx + 1 >= len(lines):
                    break
                idx += 1
        idx += 1
    return "\n".join(lines)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Scope reconstruction


@dataclass
class Scope:
    kind: str              # namespace | class | function | block | other
    name: str              # simple name ('' for blocks)
    header: str            # text between previous boundary and the brace
    open: int              # offset of '{'
    close: int             # offset of matching '}'
    parent: "Scope|None"
    children: list = field(default_factory=list)

    def namespace_path(self):
        parts = []
        s = self.parent
        while s is not None:
            if s.kind == "namespace" and s.name:
                parts.append(s.name)
            s = s.parent
        return "::".join(reversed(parts))

    def enclosing(self, kind):
        s = self.parent
        while s is not None:
            if s.kind == kind:
                return s
            s = s.parent
        return None


_CLASS_HEADER_RE = re.compile(
    r"(?:template\s*<[^{};]*>\s*)?(?:class|struct)\s+"
    r"(?:alignas\s*\([^()]*\)\s*)?"
    r"(?:DYNAMAST_\w+\s*\([^()]*\)\s*)?(\w+)\s*(?:final\s*)?"
    r"(?::[^{;]*)?$")
_NAMESPACE_RE = re.compile(r"namespace\s*([\w:]+)?\s*$")
_FN_NAME_RE = re.compile(r"([\w~]+(?:\s*::\s*[\w~]+)*)\s*\($")
_SPECIFIER_TAIL = {"const", "noexcept", "override", "final", "mutable",
                   "try", "->"}


def _classify_header(header, inside_function):
    """Classifies the scope opened by a '{' from the text preceding it."""
    h = header.strip()
    if not h:
        return ("block", "")
    m = _NAMESPACE_RE.search(h)
    if m and h.startswith("namespace"):
        name = m.group(1) or ""
        return ("namespace", name)
    if h.startswith("enum") or " enum " in h:
        return ("other", "")
    m = _CLASS_HEADER_RE.search(h)
    if m and "(" not in h[m.end(1):]:
        return ("class", m.group(1))
    if inside_function:
        return ("block", "")
    # A function definition: the header holds `ret name(args) specifiers`.
    paren = h.find("(")
    if paren < 0:
        return ("block", "")
    m = _FN_NAME_RE.search(h[:paren + 1])
    if m is None:
        return ("block", "")
    name = re.sub(r"\s+", "", m.group(1))
    last = name.rsplit("::", 1)[-1]
    if last in CONTROL_KEYWORDS:
        return ("block", "")
    # Brace-initializers in member-init lists end with a bare identifier
    # (`..., exported_` + '{'); function bodies end with ')' or a specifier.
    tail = h.rstrip()
    tail_tok = re.search(r"([\w)\]}>:]+)$", tail)
    if tail_tok:
        t = tail_tok.group(1)
        if (not t.endswith(")") and not t.endswith("}")
                and t not in _SPECIFIER_TAIL and not t.endswith(":")
                and not t.endswith(">")):
            return ("block", "")
    return ("function", name)


def build_scopes(blanked):
    """Returns the flat list of scopes (with parents) in `blanked`."""
    scopes = []
    stack = []
    # Per-level statement boundary: reset after ';', '{', '}' at that level.
    boundaries = [0]
    fn_depth = 0
    for i, c in enumerate(blanked):
        if c == ";":
            boundaries[-1] = i + 1
        elif c == "{":
            header = blanked[boundaries[-1]:i]
            kind, name = _classify_header(header, fn_depth > 0)
            parent = stack[-1] if stack else None
            scope = Scope(kind, name, header, i, -1, parent)
            if parent is not None:
                parent.children.append(scope)
            scopes.append(scope)
            stack.append(scope)
            if kind == "function":
                fn_depth += 1
            boundaries[-1] = i + 1
            boundaries.append(i + 1)
        elif c == "}":
            boundaries.pop()
            if boundaries:
                boundaries[-1] = i + 1
            else:
                boundaries = [i + 1]
            if stack:
                scope = stack.pop()
                scope.close = i
                if scope.kind == "function":
                    fn_depth -= 1
    for s in stack:  # unbalanced tail (should not happen on valid C++)
        s.close = len(blanked)
    return scopes


def enclosing_block_end(blanked, start, limit):
    """Offset of the '}' closing the block containing `start`."""
    depth = 0
    i = start
    while i < limit:
        c = blanked[i]
        if c == "{":
            depth += 1
        elif c == "}":
            if depth == 0:
                return i
            depth -= 1
        i += 1
    return limit


# ---------------------------------------------------------------------------
# Declaration model


@dataclass
class FuncInfo:
    cls: str                   # simple class name ('' for free functions)
    name: str                  # method simple name
    qual: str                  # dynamast::site::SiteManager::Commit
    file: str = ""
    line: int = 0
    blocking: bool = False
    expensive: bool = False
    hot_path: bool = False     # DYNAMAST_HOT_PATH root (hpa)
    requires: list = field(default_factory=list)   # raw mutex expressions
    return_type: str = ""      # simplified type name
    bodies: list = field(default_factory=list)     # (file, scope) pairs


@dataclass
class Project:
    root: str
    files: dict = field(default_factory=dict)       # rel -> original text
    blanked: dict = field(default_factory=dict)     # rel -> blanked text
    scopes: dict = field(default_factory=dict)      # rel -> [Scope]
    funcs: dict = field(default_factory=dict)       # (cls,name) -> FuncInfo
    free_funcs: dict = field(default_factory=dict)  # name -> FuncInfo|None
    mutex_fields: dict = field(default_factory=dict)   # (cls,fld) -> class
    mutex_by_name: dict = field(default_factory=dict)  # fld -> set(classes)
    typed_fields: dict = field(default_factory=dict)   # (cls,fld) -> type
    types_by_name: dict = field(default_factory=dict)  # fld -> set(types)
    aliases: dict = field(default_factory=dict)        # alias -> target
    class_files: dict = field(default_factory=dict)    # cls -> first file


def simplify_type(type_text, aliases):
    """Reduces a declaration type to the simple class name it names.

    `std::unique_ptr<log::DurableLog>` -> DurableLog; `const Shard&` ->
    Shard; `DebugCondVar` resolves through using-aliases.  Returns '' when
    no single class name can be extracted.
    """
    t = type_text.strip()
    t = re.sub(r"\b(?:%s)\b" % "|".join(TYPE_KEYWORDS - {"auto"}), " ", t)
    t = t.replace("*", " ").replace("&", " ").strip()
    m = re.match(r"(?:std\s*::\s*)?(\w+)\s*<\s*(.*?)\s*>\s*$", t, re.S)
    if m and m.group(1) in SMART_PTR_WRAPPERS + CONTAINER_WRAPPERS:
        t = m.group(2)
    t = re.sub(r"<[^<>]*>", "", t)          # drop remaining template args
    parts = [p for p in re.split(r"\s|::", t) if p]
    if not parts:
        return ""
    simple = parts[-1]
    if simple in TYPE_KEYWORDS or simple == "auto":
        return ""
    return aliases.get(simple, simple)


_ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*((?:\w+\s*::\s*)*\w+)\s*[<;]")
_MUTEX_FIELD_RE = re.compile(
    r"\b(DebugMutex|DebugSharedMutex|RawMutex)\s+(\w+)\s*"
    r'(?:\{\s*"([^"]*)"\s*\})?\s*;')
_ANNOT_RE = re.compile(r"\bDYNAMAST_(BLOCKING|EXPENSIVE|HOT_PATH)\b")
_REQUIRES_RE = re.compile(
    r"\bDYNAMAST_REQUIRES(?:_SHARED)?\s*\(([^()]*)\)")
_FIELD_DECL_RE = re.compile(
    r"^((?:[\w:]+\s+)*[\w:]+(?:\s*<[^;]*>)?)[\s*&]+(\w+)\s*"
    r"(?:=.*)?$", re.S)
_METHOD_DECL_RE = re.compile(
    r"([\w~]+)\s*\(")


def iter_statements(blanked, scope):
    """Yields (start, text) for top-level statements of a class scope.

    Nested scopes (inline method bodies, nested classes) are skipped so a
    method-local variable cannot masquerade as a class field; their headers
    still appear as statements ending at the nested '{'.
    """
    pos = scope.open + 1
    events = sorted((c.open, c.close) for c in scope.children)
    cursor = pos
    for open_, close in events:
        seg = blanked[cursor:open_]
        base = cursor
        for stmt in _split_statements(seg):
            yield (base + stmt[0], stmt[1])
        # the nested scope's header text itself is the trailing fragment
        cursor = close + 1
    seg = blanked[cursor:scope.close]
    for stmt in _split_statements(seg):
        yield (cursor + stmt[0], stmt[1])


def _split_statements(segment):
    start = 0
    for m in re.finditer(";", segment):
        yield (start, segment[start:m.start()])
        start = m.end()
    if segment[start:].strip():
        yield (start, segment[start:])


def load_project(root, tool="cpp_model"):
    project = Project(root=root)
    files = discover_files(root)
    for rel in files:
        path = os.path.join(root, rel)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            raise SystemExit("%s: cannot read %s: %s" % (tool, rel, e))
        project.files[rel] = text
        project.blanked[rel] = blank_text(text)
        project.scopes[rel] = build_scopes(project.blanked[rel])
    collect_aliases(project)
    collect_fields(project)
    collect_functions(project)
    return project


def discover_files(root):
    """Translation units from compile_commands.json plus all src headers."""
    rels = set()
    cc_path = os.path.join(root, "build", "compile_commands.json")
    if os.path.exists(cc_path):
        try:
            with open(cc_path, "r", encoding="utf-8") as f:
                for entry in json.load(f):
                    p = os.path.normpath(
                        os.path.join(entry.get("directory", ""),
                                     entry.get("file", "")))
                    rel = os.path.relpath(p, root)
                    if rel.startswith("src" + os.sep) and os.path.exists(
                            os.path.join(root, rel)):
                        rels.add(rel.replace(os.sep, "/"))
        except (ValueError, OSError):
            pass
    src = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames.sort()
        for fn in sorted(filenames):
            if fn.endswith((".h", ".cc")):
                rel = os.path.relpath(os.path.join(dirpath, fn), root)
                rel = rel.replace(os.sep, "/")
                if fn.endswith(".h") or rel not in rels:
                    rels.add(rel)
    return sorted(rels)


def collect_aliases(project):
    for rel in sorted(project.blanked):
        for m in _ALIAS_RE.finditer(project.blanked[rel]):
            target = re.sub(r"\s+", "", m.group(2)).rsplit("::", 1)[-1]
            project.aliases.setdefault(m.group(1), target)


def collect_fields(project):
    for rel in sorted(project.files):
        text = project.files[rel]
        blanked = project.blanked[rel]
        scopes = project.scopes[rel]
        classes = [s for s in scopes if s.kind == "class"]
        stem = os.path.splitext(os.path.basename(rel))[0]
        # Mutex fields run over the original text: the lock-class name
        # lives in the (otherwise blanked) initializer string.
        for m in _MUTEX_FIELD_RE.finditer(text):
            cls = _innermost(classes, m.start())
            cls_name = cls.name if cls else ""
            fld = m.group(2)
            if m.group(1) == "RawMutex":
                lock_class = "raw.%s.%s" % (stem, fld.strip("_"))
            else:
                lock_class = m.group(3) or ""
            if not lock_class:
                continue
            project.mutex_fields.setdefault((cls_name, fld), lock_class)
            project.mutex_by_name.setdefault(fld, set()).add(lock_class)
            project.class_files.setdefault(cls_name, rel)
        for cls in classes:
            for start, stmt in iter_statements(blanked, cls):
                # Access labels and attribute macros are not part of the
                # declaration; strip them before deciding whether the
                # statement is a field (no parens left) or a method.
                stmt = re.sub(r"\b(?:public|private|protected)\s*:", " ",
                              stmt)
                stmt = re.sub(r"\bDYNAMAST_\w+\s*\([^()]*\)", " ", stmt)
                if "(" in stmt or not stmt.strip():
                    continue
                dm = _FIELD_DECL_RE.match(stmt.strip())
                if not dm:
                    continue
                simple = simplify_type(dm.group(1), project.aliases)
                if not simple:
                    continue
                project.typed_fields.setdefault((cls.name, dm.group(2)),
                                                simple)
                project.types_by_name.setdefault(dm.group(2),
                                                 set()).add(simple)


def _innermost(scopes, offset):
    best = None
    for s in scopes:
        if s.open < offset <= s.close:
            if best is None or s.open > best.open:
                best = s
    return best


def collect_functions(project):
    for rel in sorted(project.files):
        blanked = project.blanked[rel]
        scopes = project.scopes[rel]
        # Declarations inside class bodies (prototypes and inline defs).
        for cls in (s for s in scopes if s.kind == "class"):
            for start, stmt in iter_statements(blanked, cls):
                if "(" not in stmt:
                    continue
                _record_decl(project, cls.name, cls, stmt, rel,
                             line_of(blanked, start))
        # Function definitions (in-class bodies and out-of-line ones).
        for fn in (s for s in scopes if s.kind == "function"):
            name = fn.name
            cls_scope = fn.enclosing("class")
            if "::" in name:
                parts = name.split("::")
                cls_name, simple = parts[-2], parts[-1]
            elif cls_scope is not None:
                cls_name, simple = cls_scope.name, name
            else:
                cls_name, simple = "", name
            info = _func_for(project, cls_name, simple, fn, rel)
            info.bodies.append((rel, fn))
            _merge_header(project, info, fn.header, cls_name)
            if not info.file:
                info.file = rel
                info.line = line_of(blanked, fn.open)


def _func_for(project, cls_name, simple, scope, rel):
    key = (cls_name, simple)
    info = project.funcs.get(key)
    if info is None:
        ns = scope.namespace_path() if scope else ""
        qual = "::".join(p for p in (ns, cls_name, simple) if p)
        info = FuncInfo(cls=cls_name, name=simple, qual=qual)
        project.funcs[key] = info
        if not cls_name:
            # Free functions: resolvable by simple name when unique.
            if simple in project.free_funcs:
                project.free_funcs[simple] = None   # ambiguous
            else:
                project.free_funcs[simple] = info
    return info


def _record_decl(project, cls_name, cls_scope, stmt, rel, line):
    m = _METHOD_DECL_RE.search(stmt)
    if m is None:
        return
    simple = m.group(1)
    if simple in CONTROL_KEYWORDS or simple.startswith("DYNAMAST"):
        return
    if re.fullmatch(r"[A-Z][A-Z0-9_]*", simple):
        return
    info = _func_for(project, cls_name, simple, cls_scope, rel)
    _merge_header(project, info, stmt, cls_name)
    if not info.file:
        info.file = rel
        info.line = line
    if not info.return_type:
        info.return_type = simplify_type(stmt[:m.start()], project.aliases)


def _merge_header(project, info, header, cls_name):
    for am in _ANNOT_RE.finditer(header):
        if am.group(1) == "BLOCKING":
            info.blocking = True
        elif am.group(1) == "HOT_PATH":
            info.hot_path = True
        else:
            info.expensive = True
    for rm in _REQUIRES_RE.finditer(header):
        for expr in rm.group(1).split(","):
            expr = expr.strip()
            if expr and expr not in info.requires:
                info.requires.append(expr)
    if not info.return_type:
        m = _METHOD_DECL_RE.search(header)
        if m:
            info.return_type = simplify_type(header[:m.start()],
                                             project.aliases)


# ---------------------------------------------------------------------------
# Receiver and mutex-expression resolution


_LOCAL_DECL_TMPL = (
    r"\b(?:const\s+)?([A-Za-z_][\w:]*(?:\s*<[\w:\s,*&<>]*>)?)\s*[&*]?\s+"
    r"%s\s*(?=[=;({:,)\[])")


def resolve_local_type(project, body_text, name):
    """Type of a local/parameter/range-for variable, latest decl wins."""
    best = None
    for m in re.finditer(_LOCAL_DECL_TMPL % re.escape(name), body_text):
        t = simplify_type(m.group(1), project.aliases)
        if t:
            best = t
    return best


def resolve_receiver_chain(project, chain, body_text, cls_name):
    """Resolves `stripe.cv` / `entries_[p].mu` style chains to a type."""
    parts = [p for p in re.split(r"->|\.", chain) if p.strip()]
    parts = [re.sub(r"\[[^\]]*\]", "", p).strip() for p in parts]
    parts = [p for p in parts if p]
    if not parts:
        return None
    current = None
    first = parts[0]
    if first in ("this",):
        current = cls_name
    else:
        current = resolve_local_type(project, body_text, first)
        if current is None:
            current = project.typed_fields.get((cls_name, first))
        if current is None:
            cands = project.types_by_name.get(first, set())
            if len(cands) == 1:
                current = next(iter(cands))
    for part in parts[1:]:
        if current is None:
            return None
        nxt = project.typed_fields.get((current, part))
        if nxt is None:
            cands = project.types_by_name.get(part, set())
            nxt = next(iter(cands)) if len(cands) == 1 else None
        current = nxt
    return current


def resolve_mutex_expr(project, expr, body_text, cls_name):
    """Maps a locker/REQUIRES argument to its lock class, or None."""
    expr = expr.strip()
    if not expr:
        return None
    if "." in expr or "->" in expr:
        m = re.match(r"(.+)(?:\.|->)(\w+)$", expr.replace(" ", ""))
        if not m:
            return None
        recv_chain, fld = m.group(1), m.group(2)
        recv_type = resolve_receiver_chain(project, recv_chain, body_text,
                                           cls_name)
        if recv_type is not None:
            found = project.mutex_fields.get((recv_type, fld))
            if found:
                return found
        cands = project.mutex_by_name.get(fld, set())
        return next(iter(cands)) if len(cands) == 1 else None
    fld = re.sub(r"\[[^\]]*\]", "", expr)
    found = project.mutex_fields.get((cls_name, fld))
    if found:
        return found
    cands = project.mutex_by_name.get(fld, set())
    return next(iter(cands)) if len(cands) == 1 else None


# ---------------------------------------------------------------------------
# Call and operation extraction


_CALL_RE = re.compile(
    r"((?:\w+(?:\[[^\]]*\])?\s*(?:->|\.)\s*)*)((?:\w+\s*::\s*)*\w+)\s*\(")
_CHAINED_CALL_RE = re.compile(r"\)\s*->\s*(\w+)\s*\(")
_MAKE_RE = re.compile(r"\bmake_(unique|shared)\s*<")
_NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(]")
_SPAN_RE = re.compile(r"\b(?:trace\s*::\s*)?Span\s+\w+\s*\(")
_LOCKER_RE = re.compile(
    r"\b(%s)\s+\w+\s*\(\s*([^()]*?)\s*\)\s*;" % "|".join(LOCKER_TYPES))


@dataclass
class BodyFacts:
    """Everything extracted from one function body."""
    ops: list = field(default_factory=list)     # (offset, op-string)
    calls: list = field(default_factory=list)   # (offset, (cls, name) key)
    lockers: list = field(default_factory=list)  # (offset, class, end)


def strip_root(qual):
    return qual[len("dynamast::"):] if qual.startswith("dynamast::") \
        else qual


def extract_body_facts(project, rel, fn_scope, cls_name):
    blanked = project.blanked[rel]
    body = blanked[fn_scope.open + 1:fn_scope.close]
    base = fn_scope.open + 1
    # Function header text participates in local-variable resolution
    # (parameters are declared there).
    context_text = fn_scope.header + body
    facts = BodyFacts()
    locker_spans = []
    for m in _LOCKER_RE.finditer(body):
        locker_spans.append((m.start(), m.end()))
        lock_class = resolve_mutex_expr(project, m.group(2), context_text,
                                        cls_name)
        if lock_class is None:
            continue
        end = enclosing_block_end(blanked, base + m.end(), fn_scope.close)
        facts.lockers.append((base + m.start(), lock_class, end))

    def in_locker_stmt(offset):
        return any(s <= offset < e for (s, e) in locker_spans)
    for m in _MAKE_RE.finditer(body):
        facts.ops.append((base + m.start(),
                          "builtin.alloc.make_" + m.group(1)))
    for m in _NEW_RE.finditer(body):
        facts.ops.append((base + m.start(), "builtin.alloc.new"))
    for m in _SPAN_RE.finditer(body):
        facts.ops.append((base + m.start(), "expensive:trace::Span::record"))
    for m in _CALL_RE.finditer(body):
        if in_locker_stmt(m.start()):
            continue
        chain = m.group(1).strip()
        name_path = re.sub(r"\s", "", m.group(2))
        simple = name_path.rsplit("::", 1)[-1]
        if simple in CONTROL_KEYWORDS or simple in LOCKER_TYPES:
            continue
        if simple.startswith("DYNAMAST") or re.fullmatch(
                r"[A-Z][A-Z0-9_]*", simple):
            continue
        offset = base + m.start()
        if simple in BUILTIN_CALLS:
            facts.ops.append((offset, BUILTIN_CALLS[simple]))
            continue
        key = _resolve_call(project, chain, name_path, simple,
                            context_text, cls_name)
        if key is not None:
            facts.calls.append((offset, key))
    for m in _CHAINED_CALL_RE.finditer(body):
        key = _resolve_chained(project, body, m, cls_name, context_text)
        if key is not None:
            facts.calls.append((base + m.start(), key))
    facts.ops.sort()
    facts.calls.sort()
    facts.lockers.sort()
    return facts


def _resolve_call(project, chain, name_path, simple, context_text,
                  cls_name):
    if "::" in name_path:
        qual_cls = name_path.rsplit("::", 2)[-2]
        qual_cls = project.aliases.get(qual_cls, qual_cls)
        if (qual_cls, simple) in project.funcs:
            return (qual_cls, simple)
        return None
    if chain:
        recv_type = resolve_receiver_chain(project, chain, context_text,
                                           cls_name)
        if recv_type is not None and (recv_type, simple) in project.funcs:
            return (recv_type, simple)
        return None
    if (cls_name, simple) in project.funcs:
        return (cls_name, simple)
    free = project.free_funcs.get(simple)
    if free is not None:
        return ("", simple)
    return None


def _resolve_chained(project, body, match, cls_name, context_text):
    """Resolves `...TopicFor(args)->Append(` via the return type."""
    # Walk back over the balanced paren group preceding the '->'.
    i = match.start()          # offset of ')' in body
    depth = 0
    while i >= 0:
        if body[i] == ")":
            depth += 1
        elif body[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i < 0:
        return None
    pm = re.search(r"((?:\w+(?:\[[^\]]*\])?\s*(?:->|\.)\s*)*)"
                   r"((?:\w+\s*::\s*)*\w+)\s*$", body[:i])
    if pm is None:
        return None
    producer = _resolve_call(project, pm.group(1).strip(),
                             re.sub(r"\s", "", pm.group(2)),
                             re.sub(r"\s", "", pm.group(2)).rsplit(
                                 "::", 1)[-1],
                             context_text, cls_name)
    if producer is None:
        return None
    ret = project.funcs[producer].return_type
    method = match.group(1)
    if ret and (ret, method) in project.funcs:
        return (ret, method)
    return None


# ---------------------------------------------------------------------------
# Transitive propagation


def is_exempt(rel):
    return any(rel.endswith(suffix) for suffix in EXEMPT_BODY_FILES)


def compute_facts(project):
    facts = {}           # (cls, name) -> merged BodyFacts over bodies
    for key in sorted(project.funcs):
        info = project.funcs[key]
        merged = BodyFacts()
        for rel, scope in info.bodies:
            if is_exempt(rel):
                continue
            bf = extract_body_facts(project, rel, scope, info.cls)
            merged.ops.extend(bf.ops)
            merged.calls.extend(bf.calls)
            merged.lockers.extend((o, c, e, rel, scope)
                                  for (o, c, e) in bf.lockers)
        facts[key] = merged
    return facts


def propagate(project, facts, seed_fn, barrier=frozenset()):
    """Fixpoint: (cls,name) -> {op: minimal witness chain (tuple)}.

    ``seed_fn(project, key, merged)`` returns the op strings the function
    performs directly (what an "op" is belongs to the analyzer; csa seeds
    blocking/expensive/builtin/lock ops, hpa seeds performer-tagged cost
    ops).  Ops then propagate caller-ward along resolved calls with a
    minimal witness chain (shortest, ties broken lexicographically,
    capped at MAX_CHAIN, cycles cut).  Functions in ``barrier`` still
    seed their own map but their ops do not propagate into callers —
    hpa uses this so one hot-path root does not absorb the profile of
    another root it calls.
    """
    ops_map = {key: {} for key in facts}

    def merge(dst, op, chain):
        if len(chain) > MAX_CHAIN:
            return False
        old = dst.get(op)
        cand = (len(chain), chain)
        if old is None or (len(old), old) > cand:
            dst[op] = chain
            return True
        return False

    for key in sorted(facts):
        info = project.funcs[key]
        me = (strip_root(info.qual),)
        for op in seed_fn(project, key, facts[key]):
            merge(ops_map[key], op, me)

    changed = True
    while changed:
        changed = False
        for key in sorted(facts):
            info = project.funcs[key]
            mine = strip_root(info.qual)
            for _, callee in facts[key].calls:
                if callee in barrier:
                    continue
                for op, chain in sorted(ops_map[callee].items()):
                    if mine in chain:
                        continue        # cycle cut
                    if merge(ops_map[key], op, (mine,) + chain):
                        changed = True
    return ops_map
