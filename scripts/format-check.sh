#!/usr/bin/env bash
# Verifies that every tracked C++ source file is clang-format clean
# (config: .clang-format). Exits non-zero listing offending files.
# Pass --fix to rewrite files in place instead.
#
# If clang-format is not installed, prints a warning and exits 0 so the
# rest of the check gate (scripts/check.sh) still runs.
set -euo pipefail

cd "$(dirname "$0")/.."

FIX=0
if [[ "${1:-}" == "--fix" ]]; then
  FIX=1
fi

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format-check: WARNING: $CLANG_FORMAT not found; skipping format check" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.h')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format-check: no C++ files tracked"
  exit 0
fi

if [[ $FIX -eq 1 ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format-check: reformatted ${#files[@]} files"
  exit 0
fi

bad=()
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    bad+=("$f")
  fi
done

if [[ ${#bad[@]} -gt 0 ]]; then
  echo "format-check: ${#bad[@]} files need formatting (run scripts/format-check.sh --fix):" >&2
  printf '  %s\n' "${bad[@]}" >&2
  exit 1
fi
echo "format-check: ${#files[@]} files clean"
